//! Euler paths and minimum open-trail decompositions of pull graphs.
//!
//! The paper obtains its compact misaligned-CNT-immune layout "by drawing
//! an Euler path from the Vdd to the Gnd traversing both the PUN and the
//! PDN", placing a (possibly redundant) metal contact at every node visit.
//! When a network admits no single Euler trail, it can always be covered by
//! `max(1, k)` edge-disjoint open trails where `2k` is the number of
//! odd-degree vertices; each trail becomes one diffusion row of the layout,
//! generalizing the paper's SOP product-term rows.

use crate::graph::{EdgeId, NodeId, PullGraph};

/// A walk through a [`PullGraph`] using each of its edges at most once.
///
/// Invariant: `nodes.len() == edges.len() + 1`, and edge `i` connects
/// `nodes[i]` to `nodes[i+1]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trail {
    /// Node visit sequence (every visit receives a metal contact in the
    /// compact layout).
    pub nodes: Vec<NodeId>,
    /// Edge (device) sequence.
    pub edges: Vec<EdgeId>,
}

impl Trail {
    /// Number of devices along the trail.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the trail contains no devices.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Finds a single Euler trail covering every edge exactly once, if one
/// exists (0 or 2 odd-degree vertices and a connected edge set).
///
/// The trail deterministically prefers to start at the source terminal,
/// then the drain, then the lowest-id eligible node.
///
/// # Example
///
/// ```
/// use cnfet_logic::{Expr, SpNetwork, PullGraph, euler_path};
/// let e = Expr::parse("A+B+C").unwrap(); // NAND3 PUN
/// let g = PullGraph::from_network(&SpNetwork::from_expr(&e.expr).unwrap());
/// let t = euler_path(&g).unwrap();
/// assert_eq!(t.edges.len(), 3); // Vdd-A-Out-B-Vdd-C-Out
/// ```
pub fn euler_path(graph: &PullGraph) -> Option<Trail> {
    let odd = graph.odd_nodes();
    if odd.len() > 2 || !edges_connected(graph) {
        return None;
    }
    let trails = euler_trails(graph);
    debug_assert_eq!(trails.len(), 1);
    trails.into_iter().next()
}

/// Decomposes the graph's edges into a minimum number of open trails:
/// one trail if the graph is Eulerian (≤2 odd vertices per connected
/// component), otherwise `k` trails for `2k` odd vertices, per component.
///
/// Every edge appears in exactly one trail, exactly once. Trail starts
/// prefer terminal nodes so the layout's end contacts land on Vdd/Gnd/Out.
pub fn euler_trails(graph: &PullGraph) -> Vec<Trail> {
    let mut out = Vec::new();
    let edge_count = graph.edge_count();
    if edge_count == 0 {
        return out;
    }

    // Partition edges into connected components (by node union-find).
    let mut uf = UnionFind::new(graph.node_count());
    for e in graph.edges() {
        uf.union(e.a.0 as usize, e.b.0 as usize);
    }
    let mut component_edges: Vec<Vec<EdgeId>> = Vec::new();
    let mut component_of_root: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    for (i, e) in graph.edges().iter().enumerate() {
        let root = uf.find(e.a.0 as usize);
        let next_idx = component_edges.len();
        let idx = *component_of_root.entry(root).or_insert(next_idx);
        if idx == component_edges.len() {
            component_edges.push(Vec::new());
        }
        component_edges[idx].push(EdgeId(i as u32));
    }

    for edges in component_edges {
        out.extend(component_trails(graph, &edges));
    }
    out
}

/// Trails for a single connected edge set.
fn component_trails(graph: &PullGraph, edges: &[EdgeId]) -> Vec<Trail> {
    // Degrees restricted to this component.
    let mut degree = vec![0usize; graph.node_count()];
    for &eid in edges {
        let e = graph.edge(eid);
        degree[e.a.0 as usize] += 1;
        degree[e.b.0 as usize] += 1;
    }
    let mut odd: Vec<NodeId> = (0..graph.node_count() as u32)
        .map(NodeId)
        .filter(|n| degree[n.0 as usize] % 2 == 1)
        .collect();

    // Prefer terminals as the open path's endpoints: sort odd nodes so
    // Source and Drain come first; they become the unpaired endpoints.
    odd.sort_by_key(|n| match *n {
        PullGraph::SOURCE => (0, 0),
        PullGraph::DRAIN => (1, 0),
        other => (2, other.0),
    });

    // Virtual edges pair up surplus odd vertices: with 2k odd vertices we
    // add k-1 virtual edges (between odd[2]&odd[3], odd[4]&odd[5], ...),
    // leaving odd[0], odd[1] as the Euler path endpoints. Splitting the
    // resulting Euler path at the virtual edges yields k real trails.
    #[derive(Clone, Copy)]
    struct HalfEdge {
        to: NodeId,
        edge: Option<EdgeId>, // None = virtual
        pair_id: usize,
    }
    let mut adj: Vec<Vec<HalfEdge>> = vec![Vec::new(); graph.node_count()];
    let mut used: Vec<bool> = Vec::new();
    let push_pair = |adj: &mut Vec<Vec<HalfEdge>>,
                     used: &mut Vec<bool>,
                     a: NodeId,
                     b: NodeId,
                     edge: Option<EdgeId>| {
        let pair_id = used.len();
        used.push(false);
        adj[a.0 as usize].push(HalfEdge {
            to: b,
            edge,
            pair_id,
        });
        adj[b.0 as usize].push(HalfEdge {
            to: a,
            edge,
            pair_id,
        });
    };
    for &eid in edges {
        let e = graph.edge(eid);
        push_pair(&mut adj, &mut used, e.a, e.b, Some(eid));
    }
    for pair in odd.chunks(2).skip(1) {
        if let [a, b] = pair {
            push_pair(&mut adj, &mut used, *a, *b, None);
        }
    }

    // Start node: an odd endpoint if any, else prefer Source/Drain/lowest
    // node that has edges in this component.
    let start = odd.first().copied().unwrap_or_else(|| {
        let candidates = [PullGraph::SOURCE, PullGraph::DRAIN];
        candidates
            .into_iter()
            .find(|n| !adj[n.0 as usize].is_empty())
            .unwrap_or_else(|| {
                let e = graph.edge(edges[0]);
                e.a
            })
    });

    // Hierholzer, iterative, deterministic (edges taken in insertion order).
    let mut cursor: Vec<usize> = vec![0; graph.node_count()];
    let mut stack: Vec<(NodeId, Option<Option<EdgeId>>)> = vec![(start, None)];
    // Output sequence built in reverse: (node, edge-that-led-here).
    let mut seq: Vec<(NodeId, Option<Option<EdgeId>>)> = Vec::new();
    while let Some(&(v, via)) = stack.last() {
        let vi = v.0 as usize;
        let mut advanced = false;
        while cursor[vi] < adj[vi].len() {
            let he = adj[vi][cursor[vi]];
            cursor[vi] += 1;
            if !used[he.pair_id] {
                used[he.pair_id] = true;
                stack.push((he.to, Some(he.edge)));
                advanced = true;
                break;
            }
        }
        if !advanced {
            seq.push((v, via));
            stack.pop();
        }
    }
    seq.reverse();

    // Split at virtual edges into real trails.
    let mut trails = Vec::new();
    let mut nodes = vec![seq[0].0];
    let mut tedges: Vec<EdgeId> = Vec::new();
    for &(node, via) in &seq[1..] {
        match via.expect("non-first entries record their edge") {
            Some(eid) => {
                tedges.push(eid);
                nodes.push(node);
            }
            None => {
                if !tedges.is_empty() {
                    trails.push(Trail {
                        nodes: std::mem::take(&mut nodes),
                        edges: std::mem::take(&mut tedges),
                    });
                }
                nodes = vec![node];
            }
        }
    }
    if !tedges.is_empty() {
        trails.push(Trail {
            nodes,
            edges: tedges,
        });
    }
    trails
}

fn edges_connected(graph: &PullGraph) -> bool {
    let mut uf = UnionFind::new(graph.node_count());
    for e in graph.edges() {
        uf.union(e.a.0 as usize, e.b.0 as usize);
    }
    let mut root = None;
    for e in graph.edges() {
        let r = uf.find(e.a.0 as usize);
        match root {
            None => root = Some(r),
            Some(r0) if r0 != r => return false,
            _ => {}
        }
    }
    true
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::network::SpNetwork;
    use crate::vars::VarTable;

    fn graph(s: &str) -> PullGraph {
        let mut vars = VarTable::new();
        let e = Expr::parse_with(s, &mut vars).unwrap();
        PullGraph::from_network(&SpNetwork::from_expr(&e).unwrap())
    }

    /// Checks trail invariants: edge/node counts, adjacency, single-use.
    fn validate(graph: &PullGraph, trails: &[Trail]) {
        let mut seen = vec![false; graph.edge_count()];
        for t in trails {
            assert_eq!(t.nodes.len(), t.edges.len() + 1);
            for (i, &eid) in t.edges.iter().enumerate() {
                assert!(!seen[eid.0 as usize], "edge reused");
                seen[eid.0 as usize] = true;
                let e = graph.edge(eid);
                let (a, b) = (t.nodes[i], t.nodes[i + 1]);
                assert!(
                    (e.a == a && e.b == b) || (e.a == b && e.b == a),
                    "edge endpoints mismatch"
                );
            }
        }
        assert!(seen.iter().all(|&s| s), "not all edges covered");
    }

    #[test]
    fn nand3_pun_single_trail() {
        let g = graph("A+B+C");
        let t = euler_path(&g).expect("eulerian");
        validate(&g, std::slice::from_ref(&t));
        assert_eq!(t.nodes.len(), 4);
        // Endpoints are the two terminals.
        let ends = [t.nodes[0], *t.nodes.last().unwrap()];
        assert!(ends.contains(&PullGraph::SOURCE));
        assert!(ends.contains(&PullGraph::DRAIN));
    }

    #[test]
    fn series_chain_trivial_trail() {
        let g = graph("A*B*C");
        let t = euler_path(&g).expect("eulerian");
        assert_eq!(t.nodes.first(), Some(&PullGraph::SOURCE));
        assert_eq!(t.nodes.last(), Some(&PullGraph::DRAIN));
        validate(&g, std::slice::from_ref(&t));
    }

    #[test]
    fn aoi31_pun_is_single_trail() {
        // (A+B+C)*D: odd nodes are m1 and Out → Euler path exists.
        let g = graph("(A+B+C)*D");
        let t = euler_path(&g).expect("eulerian");
        validate(&g, std::slice::from_ref(&t));
        assert_eq!(t.edges.len(), 4);
    }

    #[test]
    fn aoi31_pdn_circuit() {
        // ABC + D: all nodes even → circuit (closed trail).
        let g = graph("A*B*C+D");
        let t = euler_path(&g).expect("eulerian circuit");
        validate(&g, std::slice::from_ref(&t));
        assert_eq!(t.nodes.first(), t.nodes.last());
    }

    #[test]
    fn four_odd_vertices_two_trails() {
        // Parallel branches with internal odd nodes: (A*B)+(C*D)+E gives
        // odd degrees at Source(3) and Drain(3) only — still 1 trail.
        let g = graph("A*B+C*D+E");
        let trails = euler_trails(&g);
        validate(&g, &trails);
        assert_eq!(trails.len(), 1);

        // Construct a genuine 4-odd-vertex graph: two triangles sharing no
        // vertex cannot occur in SP networks, so build manually: star K1,3.
        let mut g2 = PullGraph::new();
        let m = g2.add_internal();
        let x = g2.add_internal();
        g2.add_edge(crate::vars::VarId(0), PullGraph::SOURCE, m);
        g2.add_edge(crate::vars::VarId(1), PullGraph::DRAIN, m);
        g2.add_edge(crate::vars::VarId(2), x, m);
        // Degrees: Source 1, Drain 1, x 1, m 3 → 4 odd vertices → 2 trails.
        let trails = euler_trails(&g2);
        validate(&g2, &trails);
        assert_eq!(trails.len(), 2);
        assert!(euler_path(&g2).is_none());
    }

    #[test]
    fn disconnected_components_each_covered() {
        let mut g = PullGraph::new();
        let a = g.add_internal();
        let b = g.add_internal();
        g.add_edge(crate::vars::VarId(0), PullGraph::SOURCE, PullGraph::DRAIN);
        g.add_edge(crate::vars::VarId(1), a, b);
        let trails = euler_trails(&g);
        validate(&g, &trails);
        assert_eq!(trails.len(), 2);
        assert!(euler_path(&g).is_none());
    }

    #[test]
    fn empty_graph() {
        let g = PullGraph::new();
        assert!(euler_trails(&g).is_empty());
    }

    #[test]
    fn deterministic() {
        let g = graph("A*(B+C)+D*(E+F)");
        let t1 = euler_trails(&g);
        let t2 = euler_trails(&g);
        assert_eq!(t1, t2);
    }

    #[test]
    fn nand3_pun_matches_paper_sequence() {
        // The paper's Figure 3(b): Vdd-A-Out-B-Vdd-C-Out. Our deterministic
        // traversal must produce an alternating contact pattern.
        let g = graph("A+B+C");
        let t = euler_path(&g).unwrap();
        for w in t.nodes.windows(2) {
            assert_ne!(w[0], w[1], "consecutive contacts must alternate");
        }
    }
}
