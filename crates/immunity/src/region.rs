//! Column decomposition of a semantic layout.
//!
//! The cell is cut into vertical slabs at every rectangle edge; within a
//! column, the y-axis is cut into [`Slab`]s of uniform semantics. Priority
//! on overlap: etch > contact > gate > doped; anything uncovered is
//! intrinsic (dead for conduction).

use cnfet_core::{PullSide, SemKind, SemanticLayout};
use cnfet_logic::VarId;

/// What a tube experiences inside a region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegionKind {
    /// Touching metal of the named net.
    Contact(String),
    /// Gated (channel) region: conducts iff the gate is on.
    Gate(VarId, PullSide),
    /// Doped region: conducts unconditionally.
    Doped(PullSide),
    /// Etched or intrinsic: conduction dies here.
    Dead,
}

impl RegionKind {
    /// Whether a conduction segment can pass through this region.
    pub fn conducts(&self) -> bool {
        !matches!(self, RegionKind::Dead)
    }
}

/// A maximal y-interval of uniform semantics within one column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Slab {
    /// Bottom edge, dbu.
    pub y0: i64,
    /// Top edge, dbu.
    pub y1: i64,
    /// Semantics.
    pub kind: RegionKind,
}

/// The column decomposition of a cell.
#[derive(Clone, Debug)]
pub struct ColumnMap {
    /// Column boundaries (ascending, `len = columns.len() + 1`), dbu.
    pub xs: Vec<i64>,
    /// Slabs per column, bottom-up, covering the cell bbox exactly.
    pub columns: Vec<Vec<Slab>>,
}

impl ColumnMap {
    /// Index of the column containing x (columns are half-open `[xa, xb)`;
    /// the last column is closed). Returns `None` outside the cell.
    pub fn column_at(&self, x: i64) -> Option<usize> {
        if self.xs.is_empty() || x < self.xs[0] || x > *self.xs.last().expect("nonempty") {
            return None;
        }
        let idx = match self.xs.binary_search(&x) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        Some(idx.min(self.columns.len() - 1))
    }

    /// Index of the slab containing y within a column (slabs half-open
    /// `[y0, y1)`; top slab closed). Returns `None` outside.
    pub fn slab_at(&self, col: usize, y: i64) -> Option<usize> {
        let slabs = &self.columns[col];
        for (i, s) in slabs.iter().enumerate() {
            if y >= s.y0 && (y < s.y1 || (i + 1 == slabs.len() && y <= s.y1)) {
                return Some(i);
            }
        }
        None
    }

    /// Column width, dbu.
    pub fn column_width(&self, col: usize) -> i64 {
        self.xs[col + 1] - self.xs[col]
    }
}

fn priority(kind: &SemKind) -> u8 {
    match kind {
        SemKind::Etch => 3,
        SemKind::Contact { .. } => 2,
        SemKind::Gate { .. } => 1,
        SemKind::Doped { .. } => 0,
    }
}

fn to_region(kind: &SemKind) -> RegionKind {
    match kind {
        SemKind::Etch => RegionKind::Dead,
        SemKind::Contact { net } => RegionKind::Contact(net.clone()),
        SemKind::Gate { var, side } => RegionKind::Gate(*var, *side),
        SemKind::Doped { side } => RegionKind::Doped(*side),
    }
}

/// Builds the column decomposition of a semantic layout.
pub fn build_columns(layout: &SemanticLayout) -> ColumnMap {
    let bbox = layout.bbox;
    let mut xs: Vec<i64> = vec![bbox.x0().0, bbox.x1().0];
    for r in &layout.rects {
        xs.push(r.rect.x0().0.clamp(bbox.x0().0, bbox.x1().0));
        xs.push(r.rect.x1().0.clamp(bbox.x0().0, bbox.x1().0));
    }
    xs.sort_unstable();
    xs.dedup();

    let mut columns = Vec::with_capacity(xs.len() - 1);
    for w in xs.windows(2) {
        let (xa, xb) = (w[0], w[1]);
        // Rects covering this whole column.
        let covering: Vec<_> = layout
            .rects
            .iter()
            .filter(|r| r.rect.x0().0 <= xa && r.rect.x1().0 >= xb)
            .collect();
        let mut ys: Vec<i64> = vec![bbox.y0().0, bbox.y1().0];
        for r in &covering {
            ys.push(r.rect.y0().0.clamp(bbox.y0().0, bbox.y1().0));
            ys.push(r.rect.y1().0.clamp(bbox.y0().0, bbox.y1().0));
        }
        ys.sort_unstable();
        ys.dedup();

        let mut slabs: Vec<Slab> = Vec::new();
        for yw in ys.windows(2) {
            let (ya, yb) = (yw[0], yw[1]);
            let winner = covering
                .iter()
                .filter(|r| r.rect.y0().0 <= ya && r.rect.y1().0 >= yb)
                .max_by_key(|r| priority(&r.kind));
            let kind = winner.map_or(RegionKind::Dead, |r| to_region(&r.kind));
            match slabs.last_mut() {
                Some(last) if last.kind == kind => last.y1 = yb,
                _ => slabs.push(Slab {
                    y0: ya,
                    y1: yb,
                    kind,
                }),
            }
        }
        columns.push(slabs);
    }
    ColumnMap { xs, columns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnfet_core::{generate_cell, GenerateOptions, StdCellKind};

    fn nand2_columns() -> ColumnMap {
        let cell = generate_cell(StdCellKind::Nand(2), &GenerateOptions::default()).unwrap();
        build_columns(&cell.semantics)
    }

    #[test]
    fn columns_cover_bbox() {
        let cell = generate_cell(StdCellKind::Nand(2), &GenerateOptions::default()).unwrap();
        let cm = nand2_columns();
        let bbox = cell.semantics.bbox;
        assert_eq!(cm.xs[0], bbox.x0().0);
        assert_eq!(*cm.xs.last().unwrap(), bbox.x1().0);
        for slabs in &cm.columns {
            assert_eq!(slabs.first().unwrap().y0, bbox.y0().0);
            assert_eq!(slabs.last().unwrap().y1, bbox.y1().0);
            for w in slabs.windows(2) {
                assert_eq!(w[0].y1, w[1].y0, "slabs must tile");
                assert_ne!(w[0].kind, w[1].kind, "adjacent slabs merged");
            }
        }
    }

    #[test]
    fn kinds_present() {
        let cm = nand2_columns();
        let mut has = (false, false, false, false);
        for slabs in &cm.columns {
            for s in slabs {
                match &s.kind {
                    RegionKind::Contact(_) => has.0 = true,
                    RegionKind::Gate(..) => has.1 = true,
                    RegionKind::Doped(_) => has.2 = true,
                    RegionKind::Dead => has.3 = true,
                }
            }
        }
        assert!(has.0 && has.1 && has.2 && has.3, "{has:?}");
    }

    #[test]
    fn lookup_functions() {
        let cm = nand2_columns();
        let x_mid = (cm.xs[0] + cm.xs[cm.xs.len() - 1]) / 2;
        let col = cm.column_at(x_mid).unwrap();
        assert!(cm.column_width(col) > 0);
        let slabs = &cm.columns[col];
        let y_mid = (slabs[0].y0 + slabs[slabs.len() - 1].y1) / 2;
        assert!(cm.slab_at(col, y_mid).is_some());
        assert_eq!(cm.column_at(cm.xs[0] - 1), None);
    }

    #[test]
    fn contact_beats_doped_gate_beats_doped() {
        // In a contact column the contact wins over the doping mask.
        let cm = nand2_columns();
        let any_contact = cm
            .columns
            .iter()
            .flatten()
            .any(|s| matches!(s.kind, RegionKind::Contact(_)));
        assert!(any_contact);
    }
}
