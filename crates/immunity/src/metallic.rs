//! Metallic-CNT yield model.
//!
//! The paper assumes metallic tubes are removed during manufacturing
//! (Section II, citing Zhang et al. \[9\]'s processing guidelines) and
//! focuses on mispositioning. This module quantifies that assumption: how
//! clean must growth + removal be for a cell/circuit to function, since a
//! single surviving metallic tube shorts its device.

/// Metallic-CNT process parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetallicProcess {
    /// Fraction of grown tubes that are metallic (≈1/3 for uniform
    /// chirality; preferential growth reduces it).
    pub metallic_fraction: f64,
    /// Probability that the removal step (electrical burning / chemical
    /// etching) eliminates a given metallic tube.
    pub removal_efficiency: f64,
}

impl MetallicProcess {
    /// Uniform growth with a given removal efficiency.
    pub fn with_removal(removal_efficiency: f64) -> MetallicProcess {
        MetallicProcess {
            metallic_fraction: 1.0 / 3.0,
            removal_efficiency,
        }
    }

    /// Probability that one grown tube site ends up as a *surviving
    /// metallic* tube.
    pub fn surviving_metallic_probability(&self) -> f64 {
        self.metallic_fraction * (1.0 - self.removal_efficiency)
    }
}

/// Probability that a circuit of `total_tubes` tube sites has **no**
/// surviving metallic tube (every device functional).
///
/// # Example
///
/// ```
/// use cnfet_immunity::MetallicProcess;
/// use cnfet_immunity::metallic_yield;
/// // 99.99% removal on a 1000-tube circuit still loses ~3.3% of dies.
/// let p = metallic_yield(&MetallicProcess::with_removal(0.9999), 1000);
/// assert!(p > 0.96 && p < 0.97);
/// ```
pub fn metallic_yield(process: &MetallicProcess, total_tubes: u64) -> f64 {
    let p_bad = process.surviving_metallic_probability();
    (1.0 - p_bad).powf(total_tubes as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_removal_gives_full_yield() {
        let p = MetallicProcess::with_removal(1.0);
        assert_eq!(metallic_yield(&p, 1_000_000), 1.0);
    }

    #[test]
    fn no_removal_is_hopeless_at_scale() {
        let p = MetallicProcess::with_removal(0.0);
        assert!(metallic_yield(&p, 100) < 1e-10);
    }

    #[test]
    fn yield_decreases_with_size() {
        let p = MetallicProcess::with_removal(0.999);
        let small = metallic_yield(&p, 100);
        let big = metallic_yield(&p, 10_000);
        assert!(small > big);
    }

    #[test]
    fn vlsi_needs_major_advancement() {
        // Zhang et al.'s conclusion: VLSI-scale CNFET circuits need major
        // technology-level advancement. A 10M-tube design at 99.99%
        // removal yields essentially zero.
        let p = MetallicProcess::with_removal(0.9999);
        assert!(metallic_yield(&p, 10_000_000) < 1e-100);
    }
}
