//! Sound immunity certification via reachability over the region
//! decomposition.
//!
//! Any x-monotone tube traces a left-to-right walk through the column
//! decomposition, moving between vertically adjacent slabs within a column
//! and into y-overlapping slabs of the next column. The certifier
//! enumerates every contact-to-contact walk through conducting regions
//! (an over-approximation of what physical tubes can do — it ignores the
//! slope bound entirely) and judges each with the superset criterion. A
//! layout certified immune here is immune to *any* mispositioned
//! x-monotone tube.

use crate::region::{build_columns, ColumnMap, RegionKind};
use crate::verdict::{Judge, Segment, Verdict};
use cnfet_core::{PullSide, SemanticLayout};
use cnfet_logic::VarId;
use std::collections::HashSet;

/// Result of certification.
#[derive(Clone, Debug)]
pub struct CertReport {
    /// No harmful segment is reachable: the cell is 100% immune.
    pub immune: bool,
    /// Distinct stray segments that were judged.
    pub segments_checked: usize,
    /// The harmful ones (empty iff `immune`).
    pub harmful: Vec<Segment>,
}

/// Certifies a cell's immunity to mispositioned CNTs.
///
/// See the module docs for the model and soundness argument.
pub fn certify(sem: &SemanticLayout) -> CertReport {
    let cm = build_columns(sem);
    let mut judge = Judge::new(sem);
    let mut seen_segments: HashSet<Segment> = HashSet::new();
    let mut harmful = Vec::new();

    // Start a traversal from every contact slab: explore its neighbours
    // (the contact slab itself would terminate the walk immediately).
    for (col, slabs) in cm.columns.iter().enumerate() {
        for (si, slab) in slabs.iter().enumerate() {
            let RegionKind::Contact(net) = &slab.kind else {
                continue;
            };
            let mut memo: HashSet<(usize, usize, u64)> = HashSet::new();
            let mut gates: Vec<(VarId, PullSide)> = Vec::new();
            let mut record = |segment: Segment| {
                if seen_segments.insert(segment.clone())
                    && judge.classify(&segment) == Verdict::Harmful
                {
                    harmful.push(segment);
                }
            };
            for (ncol, nsi) in neighbors(&cm, col, si) {
                walk(&cm, ncol, nsi, net, &mut gates, 0, &mut memo, &mut record);
            }
        }
    }

    CertReport {
        immune: harmful.is_empty(),
        segments_checked: seen_segments.len(),
        harmful,
    }
}

/// Bitmask of a polarity-tagged gate for memoization.
fn gate_bit(var: VarId, side: PullSide) -> u64 {
    let idx = var.index() * 2 + usize::from(side == PullSide::Down);
    1u64 << (idx % 64)
}

/// Slabs reachable from `(col, si)` by an x-monotone curve: vertical
/// neighbours within the column, and y-overlapping slabs of the next
/// column.
fn neighbors(cm: &ColumnMap, col: usize, si: usize) -> Vec<(usize, usize)> {
    let slab = &cm.columns[col][si];
    let mut out = Vec::new();
    if si > 0 {
        out.push((col, si - 1));
    }
    if si + 1 < cm.columns[col].len() {
        out.push((col, si + 1));
    }
    if col + 1 < cm.columns.len() {
        for (nsi, next) in cm.columns[col + 1].iter().enumerate() {
            if next.y1 >= slab.y0 && next.y0 <= slab.y1 {
                out.push((col + 1, nsi));
            }
        }
    }
    out
}

/// DFS over conducting slabs; `col`/`si` is the slab being *entered*.
#[allow(clippy::too_many_arguments)]
fn walk(
    cm: &ColumnMap,
    col: usize,
    si: usize,
    start_net: &str,
    gates: &mut Vec<(VarId, PullSide)>,
    mask: u64,
    memo: &mut HashSet<(usize, usize, u64)>,
    record: &mut impl FnMut(Segment),
) {
    let slab = &cm.columns[col][si];
    let (mask, added) = match &slab.kind {
        RegionKind::Dead => return,
        RegionKind::Contact(net) => {
            // Reached another contact: the segment ends here. Tubes
            // continuing past this contact start a new segment, which the
            // outer loop covers by starting from every contact.
            record(Segment {
                net_a: start_net.to_string(),
                net_b: net.clone(),
                gates: gates.iter().copied().collect(),
            });
            return;
        }
        RegionKind::Gate(v, s) => {
            let b = gate_bit(*v, *s);
            if mask & b == 0 {
                gates.push((*v, *s));
                (mask | b, true)
            } else {
                (mask, false)
            }
        }
        RegionKind::Doped(_) => (mask, false),
    };

    if memo.insert((col, si, mask)) {
        for (ncol, nsi) in neighbors(cm, col, si) {
            walk(cm, ncol, nsi, start_net, gates, mask, memo, record);
        }
    }

    if added {
        gates.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnfet_core::{generate_cell, GenerateOptions, Scheme, Sizing, StdCellKind, Style};

    fn opts(style: Style, scheme: Scheme) -> GenerateOptions {
        GenerateOptions {
            style,
            scheme,
            sizing: Sizing::Matched { base_lambda: 4 },
            ..GenerateOptions::default()
        }
    }

    #[test]
    fn new_style_cells_certified_immune() {
        for kind in StdCellKind::ALL {
            for scheme in [Scheme::Scheme1, Scheme::Scheme2] {
                let cell = generate_cell(kind, &opts(Style::NewImmune, scheme)).unwrap();
                let report = certify(&cell.semantics);
                assert!(
                    report.immune,
                    "{kind} {scheme}: harmful {:?}",
                    report.harmful
                );
                assert!(report.segments_checked > 0, "{kind}: trivial certificate");
            }
        }
    }

    #[test]
    fn new_style_uniform_sizing_also_immune() {
        for kind in [StdCellKind::Aoi21, StdCellKind::Aoi22, StdCellKind::Aoi31] {
            let cell = generate_cell(
                kind,
                &GenerateOptions {
                    sizing: Sizing::Uniform { width_lambda: 4 },
                    ..GenerateOptions::default()
                },
            )
            .unwrap();
            let report = certify(&cell.semantics);
            assert!(report.immune, "{kind}: {:?}", report.harmful);
        }
    }

    #[test]
    fn old_style_cells_certified_immune() {
        // [6]'s technique is also immune — it just costs more area.
        for kind in StdCellKind::ALL {
            let cell = generate_cell(kind, &opts(Style::OldEtched, Scheme::Scheme1)).unwrap();
            let report = certify(&cell.semantics);
            assert!(report.immune, "{kind}: {:?}", report.harmful);
        }
    }

    #[test]
    fn vulnerable_nand2_not_immune() {
        // Figure 2(b): the CMOS-style layout lets fully doped tubes sneak
        // around gate endcaps.
        let cell = generate_cell(
            StdCellKind::Nand(2),
            &opts(Style::Vulnerable, Scheme::Scheme1),
        )
        .unwrap();
        let report = certify(&cell.semantics);
        assert!(!report.immune, "vulnerable layout must fail certification");
        // And the failure is the paper's: a conduction path missing gates.
        assert!(report.harmful.iter().any(|s| s.net_a != s.net_b));
    }

    #[test]
    fn vulnerable_inverter_not_certified_but_new_inverter_is() {
        // The certifier is slope-unbounded, so even the vulnerable
        // inverter's endcap corridor counts as a (steep) dodge path — the
        // quantitative Figure 2(a) contrast lives in the Monte-Carlo
        // engine. The *new-style* inverter certifies absolutely.
        let vuln =
            generate_cell(StdCellKind::Inv, &opts(Style::Vulnerable, Scheme::Scheme1)).unwrap();
        assert!(!certify(&vuln.semantics).immune);
        let immune =
            generate_cell(StdCellKind::Inv, &opts(Style::NewImmune, Scheme::Scheme1)).unwrap();
        assert!(certify(&immune.semantics).immune);
    }
}
