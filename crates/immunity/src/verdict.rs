//! Harmfulness judgement of stray conduction segments.

use cnfet_core::{PullSide, SemanticLayout};
use cnfet_logic::VarId;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A stray conduction segment created by a mispositioned tube: it ties the
/// contacts of `net_a` and `net_b` together through the polarity-tagged
/// gate regions in `gates`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Segment {
    /// Net of the first contact touched.
    pub net_a: String,
    /// Net of the second contact touched.
    pub net_b: String,
    /// Gates crossed between the two contacts.
    pub gates: BTreeSet<(VarId, PullSide)>,
}

/// The judgement of a segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Both ends on the same net: a harmless parallel wire/device.
    SameNet,
    /// The segment's conduction condition is unsatisfiable (some input
    /// would need to be high and low simultaneously).
    Unsatisfiable,
    /// The gate set is a superset of a nominal path between the nets: the
    /// stray tube conducts only when the cell already does.
    SupersetOfNominal,
    /// None of the above: the segment can change the cell's function
    /// (e.g. the fully doped Vdd–Out short of Figure 2b).
    Harmful,
}

impl Verdict {
    /// Whether the segment leaves the function intact.
    pub fn is_harmless(&self) -> bool {
        !matches!(self, Verdict::Harmful)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::SameNet => write!(f, "same-net"),
            Verdict::Unsatisfiable => write!(f, "unsatisfiable"),
            Verdict::SupersetOfNominal => write!(f, "superset-of-nominal"),
            Verdict::Harmful => write!(f, "HARMFUL"),
        }
    }
}

/// Gate sets (polarity-tagged) of the nominal simple paths between one
/// pair of nets.
type PathSets = Vec<BTreeSet<(VarId, PullSide)>>;

/// A memoizing judge over one cell's semantics.
pub struct Judge<'a> {
    sem: &'a SemanticLayout,
    path_cache: HashMap<(String, String), PathSets>,
}

impl<'a> Judge<'a> {
    /// Creates a judge for a cell.
    pub fn new(sem: &'a SemanticLayout) -> Judge<'a> {
        Judge {
            sem,
            path_cache: HashMap::new(),
        }
    }

    /// Judges one segment.
    pub fn classify(&mut self, seg: &Segment) -> Verdict {
        if seg.net_a == seg.net_b {
            return Verdict::SameNet;
        }
        // Unsatisfiable: some variable appears as both a p-gate (needs 0)
        // and an n-gate (needs 1).
        let vars_up: BTreeSet<VarId> = seg
            .gates
            .iter()
            .filter(|(_, s)| *s == PullSide::Up)
            .map(|(v, _)| *v)
            .collect();
        let unsat = seg
            .gates
            .iter()
            .any(|(v, s)| *s == PullSide::Down && vars_up.contains(v));
        if unsat {
            return Verdict::Unsatisfiable;
        }
        let key = if seg.net_a <= seg.net_b {
            (seg.net_a.clone(), seg.net_b.clone())
        } else {
            (seg.net_b.clone(), seg.net_a.clone())
        };
        let sem = self.sem;
        let paths = self
            .path_cache
            .entry(key.clone())
            .or_insert_with(|| sem.node_paths(&key.0, &key.1));
        if paths.iter().any(|p| p.is_subset(&seg.gates)) {
            Verdict::SupersetOfNominal
        } else {
            Verdict::Harmful
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnfet_core::{generate_cell, GenerateOptions, StdCellKind};

    fn seg(a: &str, b: &str, gates: &[(u32, PullSide)]) -> Segment {
        Segment {
            net_a: a.to_string(),
            net_b: b.to_string(),
            gates: gates.iter().map(|&(v, s)| (VarId(v), s)).collect(),
        }
    }

    fn nand2_judge_test(segment: Segment, expected: Verdict) {
        let cell = generate_cell(StdCellKind::Nand(2), &GenerateOptions::default()).unwrap();
        let mut judge = Judge::new(&cell.semantics);
        assert_eq!(judge.classify(&segment), expected, "{segment:?}");
    }

    #[test]
    fn bare_short_is_harmful() {
        // The Figure 2(b) failure: fully doped tube from Vdd to Out.
        nand2_judge_test(seg("VDD", "OUT", &[]), Verdict::Harmful);
    }

    #[test]
    fn same_net_harmless() {
        nand2_judge_test(seg("VDD", "VDD", &[(0, PullSide::Up)]), Verdict::SameNet);
    }

    #[test]
    fn redundant_parallel_device_harmless() {
        // A stray A-gated p-tube between Vdd and Out duplicates a nominal
        // device.
        nand2_judge_test(
            seg("VDD", "OUT", &[(0, PullSide::Up)]),
            Verdict::SupersetOfNominal,
        );
    }

    #[test]
    fn superset_harmless() {
        nand2_judge_test(
            seg("VDD", "OUT", &[(0, PullSide::Up), (1, PullSide::Up)]),
            Verdict::SupersetOfNominal,
        );
    }

    #[test]
    fn crowbar_with_one_polarity_harmful() {
        // Vdd–Gnd bridge gated only by A(p): conducts whenever A = 0.
        nand2_judge_test(seg("VDD", "GND", &[(0, PullSide::Up)]), Verdict::Harmful);
    }

    #[test]
    fn inverter_like_crossing_unsatisfiable() {
        // Vdd–Gnd bridge through both A(p) and A(n) never conducts.
        nand2_judge_test(
            seg("VDD", "GND", &[(0, PullSide::Up), (0, PullSide::Down)]),
            Verdict::Unsatisfiable,
        );
    }

    #[test]
    fn partial_pdn_path_harmful() {
        // Gnd→Out through only A(n): NAND2 needs A·B.
        nand2_judge_test(seg("GND", "OUT", &[(0, PullSide::Down)]), Verdict::Harmful);
    }

    #[test]
    fn full_pdn_path_harmless() {
        nand2_judge_test(
            seg("GND", "OUT", &[(0, PullSide::Down), (1, PullSide::Down)]),
            Verdict::SupersetOfNominal,
        );
    }
}
