//! Mispositioned-CNT functional immunity analysis.
//!
//! The central claim of the paper is that its compact Euler-path layouts
//! are **100% functionally immune to mispositioned CNTs**. This crate
//! verifies that claim mechanically, on the generated geometry, under the
//! standard mispositioning model (Patil et al. \[6\]): a mispositioned tube
//! is an *x-monotone* curve of bounded local slope at an arbitrary
//! vertical offset, clipped at the cell boundary etch.
//!
//! Two engines are provided:
//!
//! * [`certify`] — a sound certification: it over-approximates the set of
//!   conduction segments *any* x-monotone tube could create (regardless of
//!   slope bound) by a reachability analysis over the layout's region
//!   decomposition, and judges every segment with the superset criterion.
//!   If it reports immune, no mispositioned tube can alter the cell's
//!   function.
//! * [`simulate`] — Monte-Carlo: random curved tubes are traced through
//!   the layout, producing failure probabilities and concrete witnesses
//!   (this regenerates the Figure 2 comparison).
//!
//! A conduction segment between contacts of nets `a` and `b` with
//! polarity-tagged gate set `S` is *harmless* iff `a == b`, or `S` is
//! unsatisfiable (same input needed both high and low), or some nominal
//! simple path between `a` and `b` in the cell's device graph is a subset
//! of `S` — in which case the stray tube only conducts when the cell
//! already does.
//!
//! # Example
//!
//! ```
//! use cnfet_core::{generate_cell, GenerateOptions, StdCellKind};
//! use cnfet_immunity::certify;
//!
//! let cell = generate_cell(StdCellKind::Nand(2), &GenerateOptions::default()).unwrap();
//! assert!(certify(&cell.semantics).immune);
//! ```

pub mod cert;
pub mod mc;
pub mod metallic;
pub mod region;
pub mod verdict;

pub use cert::{certify, CertReport};
pub use mc::{simulate, trace_polyline, McOptions, McReport, Witness};
pub use metallic::{metallic_yield, MetallicProcess};
pub use region::{build_columns, ColumnMap, RegionKind, Slab};
pub use verdict::{Judge, Segment, Verdict};
