//! Monte-Carlo mispositioned-tube simulation — the quantitative engine
//! behind the Figure 2 comparison.
//!
//! Tubes are x-monotone piecewise-linear random walks: each segment of
//! length `segment_len_lambda` (in x) draws a slope uniformly from
//! `[-tau, tau]`. The tube is traced through the region decomposition;
//! every contact-to-contact conduction segment is judged, and a tube whose
//! trace contains any harmful segment counts as a functional failure.

use crate::region::{build_columns, ColumnMap, RegionKind};
use crate::verdict::{Judge, Segment, Verdict};
use cnfet_core::{PullSide, SemanticLayout};
use cnfet_geom::DBU_PER_LAMBDA;
use cnfet_logic::VarId;
use cnfet_rng::rngs::StdRng;
use cnfet_rng::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Monte-Carlo options.
#[derive(Clone, Debug)]
pub struct McOptions {
    /// Number of tubes to sample.
    pub tubes: usize,
    /// Slope bound per segment (`dy/dx`). The paper's mispositioned tubes
    /// are wavy but roughly aligned; 1.0 (45°) is a generous bound.
    pub tau: f64,
    /// Length (in x) of each straight sub-segment, λ.
    pub segment_len_lambda: f64,
    /// RNG seed (runs are deterministic).
    pub seed: u64,
    /// Probability that a sampled mispositioned tube is a *surviving
    /// metallic* tube (grown metallic and missed by the removal step). A
    /// metallic tube conducts regardless of gate bias, so any
    /// contact-to-contact trace between distinct nets it creates is a
    /// functional failure — the gate-superset harmlessness criterion
    /// cannot save it. `0.0` (the default, the paper's assumption of
    /// perfect removal) keeps the RNG stream of earlier releases.
    pub metallic_fraction: f64,
}

impl Default for McOptions {
    fn default() -> Self {
        McOptions {
            tubes: 2000,
            tau: 1.0,
            segment_len_lambda: 6.0,
            seed: 0xC0FFEE,
            metallic_fraction: 0.0,
        }
    }
}

/// A concrete failing tube.
#[derive(Clone, Debug)]
pub struct Witness {
    /// Polyline vertices (dbu).
    pub polyline: Vec<(i64, i64)>,
    /// The harmful segment it created.
    pub segment: Segment,
}

/// Monte-Carlo result.
#[derive(Clone, Debug)]
pub struct McReport {
    /// Tubes sampled.
    pub tubes: usize,
    /// Tubes that broke the cell's function.
    pub failures: usize,
    /// Of the failures, how many were caused by a surviving metallic tube
    /// (always `0` when [`McOptions::metallic_fraction`] is `0.0`).
    pub metallic_failures: usize,
    /// Example failures (up to 8).
    pub witnesses: Vec<Witness>,
}

impl McReport {
    /// Failure probability per mispositioned tube.
    pub fn failure_probability(&self) -> f64 {
        if self.tubes == 0 {
            0.0
        } else {
            self.failures as f64 / self.tubes as f64
        }
    }
}

/// Runs the Monte-Carlo mispositioning experiment on a cell.
pub fn simulate(sem: &SemanticLayout, opts: &McOptions) -> McReport {
    let cm = build_columns(sem);
    let mut judge = Judge::new(sem);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let bbox = sem.bbox;
    let (x0, x1) = (bbox.x0().0, bbox.x1().0);
    let (y0, y1) = (bbox.y0().0, bbox.y1().0);
    let seg_dx = (opts.segment_len_lambda * DBU_PER_LAMBDA as f64).max(1.0);

    let mut failures = 0usize;
    let mut metallic_failures = 0usize;
    let mut witnesses = Vec::new();

    for _ in 0..opts.tubes {
        // A tube is metallic when the removal step missed it. The draw is
        // skipped entirely at fraction 0 so the nominal RNG stream (and
        // therefore every pre-variation golden result) is unchanged.
        let metallic =
            opts.metallic_fraction > 0.0 && rng.gen_range(0.0..1.0) < opts.metallic_fraction;

        // Sample an x-monotone polyline spanning the cell.
        let mut poly: Vec<(f64, f64)> = Vec::new();
        let mut x = x0 as f64;
        let mut y = rng.gen_range(y0 as f64..=y1 as f64);
        poly.push((x, y));
        while x < x1 as f64 {
            let slope: f64 = rng.gen_range(-opts.tau..=opts.tau);
            let nx = (x + seg_dx).min(x1 as f64);
            y += slope * (nx - x);
            x = nx;
            poly.push((x, y));
        }

        if let Some(seg) = trace_polyline(&cm, &poly, &mut judge, metallic) {
            failures += 1;
            if metallic {
                metallic_failures += 1;
            }
            if witnesses.len() < 8 {
                witnesses.push(Witness {
                    polyline: poly.iter().map(|&(a, b)| (a as i64, b as i64)).collect(),
                    segment: seg,
                });
            }
        }
    }

    McReport {
        tubes: opts.tubes,
        failures,
        metallic_failures,
        witnesses,
    }
}

/// Traces an x-monotone polyline through a region decomposition and
/// returns its first harmful conduction segment, or `None` when every
/// contact-to-contact segment it creates is harmless.
///
/// A `metallic` tube conducts with its gates stuck on: any segment
/// between distinct nets is harmful no matter what sits over it. For a
/// semiconducting tube each segment is judged with the full
/// [`Judge::classify`] superset criterion.
///
/// This is the verdict seam the Monte-Carlo engine samples through; it
/// is public so per-die defect-map testers (the `cnfet-repair` crate)
/// can evaluate *explicit* tube populations against a layout with
/// exactly the same machinery.
pub fn trace_polyline(
    cm: &ColumnMap,
    poly: &[(f64, f64)],
    judge: &mut Judge<'_>,
    metallic: bool,
) -> Option<Segment> {
    // Sample the polyline densely and build the region sequence.
    let step = DBU_PER_LAMBDA as f64 / 4.0; // 0.25λ
    let mut regions: Vec<&RegionKind> = Vec::new();
    for w in poly.windows(2) {
        let ((xa, ya), (xb, yb)) = (w[0], w[1]);
        let dx = xb - xa;
        let n = (dx / step).ceil().max(1.0) as usize;
        for k in 0..n {
            let t = k as f64 / n as f64;
            let x = (xa + t * dx) as i64;
            let y = (ya + t * (yb - ya)) as i64;
            let Some(col) = cm.column_at(x) else { continue };
            let Some(si) = cm.slab_at(col, y) else {
                continue;
            };
            let kind = &cm.columns[col][si].kind;
            if regions.last() != Some(&kind) {
                regions.push(kind);
            }
        }
    }

    // Split into contact-to-contact conduction segments.
    let mut current: Option<(String, BTreeSet<(VarId, PullSide)>)> = None;
    for kind in regions {
        match kind {
            RegionKind::Dead => current = None,
            RegionKind::Doped(_) => {}
            RegionKind::Gate(v, s) => {
                if let Some((_, gates)) = current.as_mut() {
                    gates.insert((*v, *s));
                }
            }
            RegionKind::Contact(net) => {
                if let Some((start, gates)) = current.take() {
                    let seg = Segment {
                        net_a: start,
                        net_b: net.clone(),
                        gates,
                    };
                    let harmful = if metallic {
                        seg.net_a != seg.net_b
                    } else {
                        judge.classify(&seg) == Verdict::Harmful
                    };
                    if harmful {
                        return Some(seg);
                    }
                }
                current = Some((net.clone(), BTreeSet::new()));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnfet_core::{generate_cell, GenerateOptions, Sizing, StdCellKind, Style};

    fn cell(kind: StdCellKind, style: Style) -> cnfet_core::GeneratedCell {
        generate_cell(
            kind,
            &GenerateOptions {
                style,
                sizing: Sizing::Matched { base_lambda: 4 },
                ..GenerateOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn vulnerable_nand2_fails_sometimes() {
        // Figure 2(b): the misaligned-CNT-vulnerable NAND layout.
        let c = cell(StdCellKind::Nand(2), Style::Vulnerable);
        let report = simulate(&c.semantics, &McOptions::default());
        assert!(
            report.failures > 0,
            "vulnerable layout produced no failures in {} tubes",
            report.tubes
        );
        assert!(!report.witnesses.is_empty());
    }

    #[test]
    fn new_immune_nand2_never_fails() {
        // Figure 2(c): 100% functional immunity.
        let c = cell(StdCellKind::Nand(2), Style::NewImmune);
        let report = simulate(
            &c.semantics,
            &McOptions {
                tubes: 5000,
                ..McOptions::default()
            },
        );
        assert_eq!(report.failures, 0, "{:?}", report.witnesses.first());
    }

    #[test]
    fn old_immune_nand3_never_fails() {
        let c = cell(StdCellKind::Nand(3), Style::OldEtched);
        let report = simulate(&c.semantics, &McOptions::default());
        assert_eq!(report.failures, 0, "{:?}", report.witnesses.first());
    }

    #[test]
    fn deterministic_given_seed() {
        let c = cell(StdCellKind::Nand(2), Style::Vulnerable);
        let a = simulate(&c.semantics, &McOptions::default());
        let b = simulate(&c.semantics, &McOptions::default());
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn failure_probability_math() {
        let r = McReport {
            tubes: 200,
            failures: 25,
            metallic_failures: 0,
            witnesses: Vec::new(),
        };
        assert!((r.failure_probability() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn metallic_tubes_break_even_immune_layouts() {
        // The new compact layout is 100% immune to *semiconducting*
        // mispositioned tubes, but a surviving metallic tube conducts
        // regardless of gate bias — with every sampled tube metallic, the
        // failure count must be substantial and all-metallic.
        let c = cell(StdCellKind::Nand(2), Style::NewImmune);
        let clean = simulate(&c.semantics, &McOptions::default());
        assert_eq!(clean.failures, 0);
        assert_eq!(clean.metallic_failures, 0);

        let dirty = simulate(
            &c.semantics,
            &McOptions {
                metallic_fraction: 1.0,
                ..McOptions::default()
            },
        );
        assert!(dirty.failures > 0, "metallic tubes must cause failures");
        assert_eq!(dirty.metallic_failures, dirty.failures);
    }

    #[test]
    fn metallic_fraction_zero_keeps_the_nominal_stream() {
        // fraction == 0 must not consume RNG draws: the failure count of
        // the vulnerable layout is byte-for-byte the pre-variation result.
        let c = cell(StdCellKind::Nand(2), Style::Vulnerable);
        let a = simulate(&c.semantics, &McOptions::default());
        let b = simulate(
            &c.semantics,
            &McOptions {
                metallic_fraction: 0.0,
                ..McOptions::default()
            },
        );
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.metallic_failures, 0);
    }
}
