//! The engine-level circuit description: plain node indices, element
//! values, and source waveforms.
//!
//! An [`MnaCircuit`] is the *numeric* half of the engine's input: element
//! values attached to a topology. The *symbolic* half — unknown indexing
//! and stamping plans — is computed once per topology by
//! [`crate::Pattern::analyze`] and shared across every circuit with the
//! same element kinds and terminals (a sweep corner only changes values).

use cnfet_device::FetModel;
use std::sync::Arc;

/// A time-dependent independent source value (SPICE `DC`/`PULSE`/`PWL`
/// semantics, mirroring the netlist-level waveforms of `cnfet-spice`).
#[derive(Clone, Debug, PartialEq)]
pub enum SourceWave {
    /// Constant voltage.
    Dc(f64),
    /// Periodic trapezoidal pulse.
    Pulse {
        /// Initial level (V).
        v0: f64,
        /// Pulsed level (V).
        v1: f64,
        /// Delay before the first edge (s).
        delay: f64,
        /// Rise time (s).
        rise: f64,
        /// Fall time (s).
        fall: f64,
        /// Pulse width at `v1` (s).
        width: f64,
        /// Period (s); 0 disables repetition.
        period: f64,
    },
    /// Piecewise-linear waveform through `(time, value)` points.
    Pwl(Vec<(f64, f64)>),
}

impl SourceWave {
    /// The source value at time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            SourceWave::Dc(v) => *v,
            SourceWave::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v0;
                }
                let mut tt = t - delay;
                if *period > 0.0 {
                    tt %= period;
                }
                if tt < *rise {
                    v0 + (v1 - v0) * tt / rise
                } else if tt < rise + width {
                    *v1
                } else if tt < rise + width + fall {
                    v1 + (v0 - v1) * (tt - rise - width) / fall
                } else {
                    *v0
                }
            }
            SourceWave::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let ((t0, v0), (t1, v1)) = (w[0], w[1]);
                    if t <= t1 {
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }
}

/// One circuit element over plain node indices; node 0 is ground.
#[derive(Clone)]
pub enum MnaElement {
    /// Linear resistor.
    Resistor {
        /// First terminal.
        a: usize,
        /// Second terminal.
        b: usize,
        /// Resistance in ohms.
        ohms: f64,
    },
    /// Linear capacitor (open at DC; companion model in transient).
    Capacitor {
        /// First terminal.
        a: usize,
        /// Second terminal.
        b: usize,
        /// Capacitance in farads.
        farads: f64,
    },
    /// Linear inductor (short at DC; adds one branch-current unknown).
    Inductor {
        /// First terminal (current flows `a` → `b` at positive branch
        /// current).
        a: usize,
        /// Second terminal.
        b: usize,
        /// Inductance in henries.
        henries: f64,
    },
    /// Independent voltage source from `p` to `n` (adds one branch-current
    /// unknown; positive branch current flows `p` → `n` *through* the
    /// source, the SPICE convention — supplies see negative current).
    VSource {
        /// Positive terminal.
        p: usize,
        /// Negative terminal.
        n: usize,
        /// Source waveform.
        wave: SourceWave,
    },
    /// Quasi-static FET, linearized per Newton iteration. Terminal
    /// capacitances are *not* implied — add explicit [`MnaElement::Capacitor`]s
    /// (the `cnfet-spice` lowering does).
    Fet {
        /// Drain terminal.
        d: usize,
        /// Gate terminal.
        g: usize,
        /// Source terminal.
        s: usize,
        /// Large-signal device model.
        model: Arc<dyn FetModel + Send + Sync>,
    },
}

impl std::fmt::Debug for MnaElement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MnaElement::Resistor { a, b, ohms } => write!(f, "R({a},{b},{ohms})"),
            MnaElement::Capacitor { a, b, farads } => write!(f, "C({a},{b},{farads})"),
            MnaElement::Inductor { a, b, henries } => write!(f, "L({a},{b},{henries})"),
            MnaElement::VSource { p, n, .. } => write!(f, "V({p},{n})"),
            MnaElement::Fet { d, g, s, .. } => write!(f, "FET(d={d},g={g},s={s})"),
        }
    }
}

/// A circuit: an element list over node indices `0..node_count()`, with
/// node 0 as ground. Node indices are dense — adding an element touching
/// node `k` implies nodes `0..=k` exist.
#[derive(Clone, Debug)]
pub struct MnaCircuit {
    n_nodes: usize,
    elements: Vec<MnaElement>,
}

impl Default for MnaCircuit {
    fn default() -> Self {
        MnaCircuit::new()
    }
}

impl MnaCircuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> MnaCircuit {
        MnaCircuit {
            n_nodes: 1,
            elements: Vec::new(),
        }
    }

    fn touch(&mut self, node: usize) {
        self.n_nodes = self.n_nodes.max(node + 1);
    }

    /// Adds an element, growing the node count to cover its terminals.
    pub fn add(&mut self, element: MnaElement) -> &mut MnaCircuit {
        match &element {
            MnaElement::Resistor { a, b, ohms } => {
                assert!(
                    ohms.is_finite() && *ohms > 0.0,
                    "resistance must be positive"
                );
                self.touch(*a);
                self.touch(*b);
            }
            MnaElement::Capacitor { a, b, farads } => {
                assert!(
                    farads.is_finite() && *farads >= 0.0,
                    "capacitance must be non-negative"
                );
                self.touch(*a);
                self.touch(*b);
            }
            MnaElement::Inductor { a, b, henries } => {
                assert!(
                    henries.is_finite() && *henries > 0.0,
                    "inductance must be positive"
                );
                self.touch(*a);
                self.touch(*b);
            }
            MnaElement::VSource { p, n, .. } => {
                self.touch(*p);
                self.touch(*n);
            }
            MnaElement::Fet { d, g, s, .. } => {
                self.touch(*d);
                self.touch(*g);
                self.touch(*s);
            }
        }
        self.elements.push(element);
        self
    }

    /// Adds a resistor.
    pub fn resistor(&mut self, a: usize, b: usize, ohms: f64) -> &mut MnaCircuit {
        self.add(MnaElement::Resistor { a, b, ohms })
    }

    /// Adds a capacitor (zero-valued capacitors are skipped).
    pub fn capacitor(&mut self, a: usize, b: usize, farads: f64) -> &mut MnaCircuit {
        if farads == 0.0 {
            return self;
        }
        self.add(MnaElement::Capacitor { a, b, farads })
    }

    /// Adds an inductor.
    pub fn inductor(&mut self, a: usize, b: usize, henries: f64) -> &mut MnaCircuit {
        self.add(MnaElement::Inductor { a, b, henries })
    }

    /// Adds an independent voltage source and returns its index among
    /// sources (usable with [`crate::Probe::SourceCurrent`]).
    pub fn vsource(&mut self, p: usize, n: usize, wave: SourceWave) -> usize {
        let idx = self.vsource_count();
        self.add(MnaElement::VSource { p, n, wave });
        idx
    }

    /// Adds a FET current element (no implied terminal capacitances).
    pub fn fet(
        &mut self,
        d: usize,
        g: usize,
        s: usize,
        model: Arc<dyn FetModel + Send + Sync>,
    ) -> &mut MnaCircuit {
        self.add(MnaElement::Fet { d, g, s, model })
    }

    /// Declares that nodes `0..n` exist even if no element touches them
    /// yet (never shrinks). A declared-but-unconnected node makes the
    /// system singular — exactly the floating-node diagnostic callers
    /// lowering from a named netlist want to keep.
    pub fn reserve_nodes(&mut self, n: usize) -> &mut MnaCircuit {
        self.n_nodes = self.n_nodes.max(n);
        self
    }

    /// Total node count including ground.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// All elements, in insertion order.
    pub fn elements(&self) -> &[MnaElement] {
        &self.elements
    }

    /// Number of voltage sources.
    pub fn vsource_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, MnaElement::VSource { .. }))
            .count()
    }

    /// Whether the circuit contains any nonlinear (FET) element.
    pub fn has_fets(&self) -> bool {
        self.elements
            .iter()
            .any(|e| matches!(e, MnaElement::Fet { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_tracks_terminals() {
        let mut c = MnaCircuit::new();
        assert_eq!(c.node_count(), 1);
        c.resistor(1, 3, 10.0);
        assert_eq!(c.node_count(), 4);
        c.capacitor(2, 0, 1e-15);
        assert_eq!(c.node_count(), 4);
    }

    #[test]
    fn zero_capacitor_skipped() {
        let mut c = MnaCircuit::new();
        c.capacitor(1, 0, 0.0);
        assert!(c.elements().is_empty());
    }

    #[test]
    fn source_wave_pulse_shape() {
        let w = SourceWave::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 1.0,
            rise: 1.0,
            fall: 1.0,
            width: 2.0,
            period: 10.0,
        };
        assert_eq!(w.value_at(0.0), 0.0);
        assert_eq!(w.value_at(1.5), 0.5);
        assert_eq!(w.value_at(3.0), 1.0);
        assert_eq!(w.value_at(11.5), 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_resistance_rejected() {
        MnaCircuit::new().resistor(1, 0, -1.0);
    }
}
