//! `.measure`-style waveform extraction: threshold crossings,
//! propagation delay, slew and supply energy — computed from simulated
//! [`Waveform`]s, replacing analytic shortcuts.

use crate::waveform::{Probe, Waveform};

/// Which transition direction a crossing search accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Edge {
    /// Only upward crossings.
    Rising,
    /// Only downward crossings.
    Falling,
    /// Either direction.
    Any,
}

/// First time at or after `t_from` where `trace` crosses `threshold` in
/// the requested direction, linearly interpolated between samples.
pub fn crossing_time(
    time: &[f64],
    trace: &[f64],
    threshold: f64,
    edge: Edge,
    t_from: f64,
) -> Option<f64> {
    for k in 1..time.len() {
        if time[k] < t_from {
            continue;
        }
        let (v0, v1) = (trace[k - 1], trace[k]);
        let rising = v0 < threshold && v1 >= threshold;
        let falling = v0 > threshold && v1 <= threshold;
        let hit = match edge {
            Edge::Rising => rising,
            Edge::Falling => falling,
            Edge::Any => rising || falling,
        };
        if hit {
            let frac = (threshold - v0) / (v1 - v0);
            let t = time[k - 1] + frac * (time[k] - time[k - 1]);
            if t >= t_from {
                return Some(t);
            }
        }
    }
    None
}

/// Propagation delay: from the input's mid-rail crossing (in the given
/// direction, at or after `t_from`) to the output's next mid-rail
/// crossing in either direction.
pub fn propagation_delay(
    wave: &Waveform,
    input: Probe,
    output: Probe,
    vdd: f64,
    input_edge: Edge,
    t_from: f64,
) -> Option<f64> {
    let time = wave.time();
    let mid = vdd / 2.0;
    let t_in = crossing_time(time, wave.probe(input), mid, input_edge, t_from)?;
    let t_out = crossing_time(time, wave.probe(output), mid, Edge::Any, t_in)?;
    Some(t_out - t_in)
}

/// 10%-to-90% transition time of the probed trace's edge starting at or
/// after `t_from`.
///
/// # Panics
///
/// Panics on [`Edge::Any`] — a slew measurement needs a direction.
pub fn slew_time(wave: &Waveform, probe: Probe, vdd: f64, edge: Edge, t_from: f64) -> Option<f64> {
    let time = wave.time();
    let trace = wave.probe(probe);
    let (lo, hi) = (0.1 * vdd, 0.9 * vdd);
    match edge {
        Edge::Rising => {
            let t_lo = crossing_time(time, trace, lo, Edge::Rising, t_from)?;
            let t_hi = crossing_time(time, trace, hi, Edge::Rising, t_lo)?;
            Some(t_hi - t_lo)
        }
        Edge::Falling => {
            let t_hi = crossing_time(time, trace, hi, Edge::Falling, t_from)?;
            let t_lo = crossing_time(time, trace, lo, Edge::Falling, t_hi)?;
            Some(t_lo - t_hi)
        }
        Edge::Any => panic!("slew_time needs a definite edge direction"),
    }
}

/// Energy delivered by a fixed supply over `[t0, t1]`: trapezoidal
/// `∫ vdd · (−i_supply) dt`, clipped to the window (the supply branch
/// current is negative while sourcing, per the MNA sign convention).
pub fn energy_from_supply(wave: &Waveform, supply: Probe, vdd: f64, t0: f64, t1: f64) -> f64 {
    let time = wave.time();
    let current = wave.probe(supply);
    let mut energy = 0.0;
    for k in 1..time.len() {
        let (ta, tb) = (time[k - 1], time[k]);
        if tb <= t0 || ta >= t1 {
            continue;
        }
        let (ca, cb) = (ta.max(t0), tb.min(t1));
        // Interpolate the current at the clipped endpoints.
        let lerp = |t: f64| {
            let f = (t - ta) / (tb - ta);
            current[k - 1] + f * (current[k] - current[k - 1])
        };
        energy += vdd * (-(lerp(ca) + lerp(cb)) / 2.0) * (cb - ca);
    }
    energy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{MnaCircuit, SourceWave};
    use crate::engine::{Engine, TranSpec};
    use crate::pattern::Pattern;
    use std::sync::Arc;

    #[test]
    fn crossing_interpolation() {
        let time = [0.0, 1.0, 2.0];
        let trace = [0.0, 1.0, 0.0];
        let t = crossing_time(&time, &trace, 0.5, Edge::Rising, 0.0).unwrap();
        assert!((t - 0.5).abs() < 1e-12);
        let t = crossing_time(&time, &trace, 0.5, Edge::Falling, 0.6).unwrap();
        assert!((t - 1.5).abs() < 1e-12);
    }

    #[test]
    fn no_crossing_returns_none() {
        let time = [0.0, 1.0];
        let trace = [0.0, 0.2];
        assert_eq!(crossing_time(&time, &trace, 0.5, Edge::Any, 0.0), None);
    }

    fn rc_charge() -> (Waveform, f64) {
        // 1 kΩ into 1 pF charged to 1 V: E_supply = C·V² = 1e-12 J.
        let mut c = MnaCircuit::new();
        c.vsource(1, 0, SourceWave::Pwl(vec![(0.0, 0.0), (1e-12, 1.0)]));
        c.resistor(1, 2, 1e3);
        c.capacitor(2, 0, 1e-12);
        let mut e = Engine::new(Arc::new(Pattern::analyze(&c)));
        let wave = e.tran(&c, &TranSpec::new(1e-12, 12e-9)).unwrap();
        (wave, 1.0)
    }

    #[test]
    fn rc_charge_energy() {
        let (wave, vdd) = rc_charge();
        let e = energy_from_supply(&wave, Probe::SourceCurrent(0), vdd, 0.0, 12e-9);
        assert!(
            (e - 1e-12).abs() < 0.03e-12,
            "expected ~1 pJ from the supply, got {e:e}"
        );
    }

    #[test]
    fn rc_slew_matches_analytic() {
        // Exponential rise: t(10%→90%) = τ·ln 9.
        let (wave, vdd) = rc_charge();
        let slew = slew_time(&wave, Probe::Node(2), vdd, Edge::Rising, 0.0).unwrap();
        let expected = 1e-9 * 9f64.ln();
        assert!(
            (slew - expected).abs() / expected < 0.02,
            "slew {slew:e} vs analytic {expected:e}"
        );
    }

    #[test]
    fn rc_delay_is_ln2_tau() {
        let (wave, vdd) = rc_charge();
        let d = propagation_delay(
            &wave,
            Probe::Node(1),
            Probe::Node(2),
            vdd,
            Edge::Rising,
            0.0,
        )
        .unwrap();
        let expected = 1e-9 * 2f64.ln();
        assert!(
            (d - expected).abs() / expected < 0.02,
            "delay {d:e} vs analytic {expected:e}"
        );
    }
}
