//! AC small-signal analysis over a logarithmic frequency grid.
//!
//! The circuit is linearized about its DC operating point (FETs become
//! `gds`/`gm`/`gs` conductance stamps), and the complex system
//! `(G + jωC) X = B` is solved per frequency through a real `2n × 2n`
//! embedding `[[G, −ωC], [ωC, G]]` — which keeps the whole analysis on
//! the same real [`crate::LuFactor`] machinery, pivot-order reuse
//! included: the first frequency factors, every later frequency
//! refactors under the recorded order.

use crate::circuit::{MnaCircuit, MnaElement};
use crate::engine::{Engine, MnaError, GMIN};
use crate::pattern::Plan;
use crate::solver::LuFactor;
use crate::stamp::fet_small_signal;

/// An AC analysis request: which source is the unit excitation and the
/// logarithmic frequency grid to sweep.
#[derive(Clone, Debug)]
pub struct AcSpec {
    /// Index of the excited voltage source (insertion order); it drives
    /// 1 V∠0°, every other source is AC-grounded.
    pub source: usize,
    /// Start frequency (Hz, inclusive).
    pub f_start: f64,
    /// Stop frequency (Hz, inclusive — appended if the grid misses it).
    pub f_stop: f64,
    /// Grid points per decade.
    pub points_per_decade: usize,
}

impl AcSpec {
    /// A decade sweep of source `source` from `f_start` to `f_stop`.
    pub fn new(source: usize, f_start: f64, f_stop: f64, points_per_decade: usize) -> AcSpec {
        AcSpec {
            source,
            f_start,
            f_stop,
            points_per_decade,
        }
    }
}

/// Builds the logarithmic grid: `f_start · 10^(k/ppd)` up to `f_stop`,
/// with `f_stop` appended when the last decade step misses it.
fn log_grid(f_start: f64, f_stop: f64, ppd: usize) -> Vec<f64> {
    let mut freqs = Vec::new();
    let mut k = 0usize;
    loop {
        let f = f_start * 10f64.powf(k as f64 / ppd as f64);
        if f > f_stop * (1.0 + 1e-12) {
            break;
        }
        freqs.push(f);
        k += 1;
    }
    if freqs.last().is_none_or(|&f| f < f_stop * (1.0 - 1e-12)) {
        freqs.push(f_stop);
    }
    freqs
}

/// Complex node-voltage phasors per frequency point.
#[derive(Clone, Debug)]
pub struct AcResult {
    n_nodes: usize,
    freqs: Vec<f64>,
    /// Real parts, one row of `dim` unknowns per frequency.
    re: Vec<Vec<f64>>,
    /// Imaginary parts, same layout.
    im: Vec<Vec<f64>>,
}

impl AcResult {
    /// The swept frequencies (Hz, ascending).
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Number of frequency points.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// Whether the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    fn phasor(&self, k: usize, node: usize) -> (f64, f64) {
        assert!(node <= self.n_nodes, "node {node} out of range");
        if node == 0 {
            (0.0, 0.0)
        } else {
            (self.re[k][node - 1], self.im[k][node - 1])
        }
    }

    /// Voltage magnitude of `node` at frequency point `k`.
    pub fn magnitude(&self, k: usize, node: usize) -> f64 {
        let (re, im) = self.phasor(k, node);
        re.hypot(im)
    }

    /// Voltage phase of `node` at frequency point `k`, in degrees.
    pub fn phase_deg(&self, k: usize, node: usize) -> f64 {
        let (re, im) = self.phasor(k, node);
        im.atan2(re).to_degrees()
    }
}

impl Engine {
    /// Runs an AC small-signal analysis: DC operating point, linearize,
    /// then solve the complex system over the log grid (reusing one pivot
    /// order across all frequencies).
    ///
    /// # Errors
    ///
    /// Returns [`MnaError`] when the DC solve fails or the small-signal
    /// system is singular.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive or reversed frequency range, an
    /// out-of-range source index, or a topology mismatch.
    pub fn ac(&mut self, circuit: &MnaCircuit, spec: &AcSpec) -> Result<AcResult, MnaError> {
        assert!(
            spec.f_start > 0.0 && spec.f_stop >= spec.f_start,
            "frequency range must be positive and ascending"
        );
        assert!(
            spec.source < self.pattern().n_vsources(),
            "AC source index out of range"
        );
        assert!(spec.points_per_decade > 0, "points_per_decade must be > 0");
        let op = self.dc(circuit)?;
        let pattern = std::sync::Arc::clone(self.pattern());
        let dim = pattern.dim();

        // Frequency-independent real part G and the susceptance matrix C
        // (the system is G + jω·C).
        let mut g_mat = vec![0.0; dim * dim];
        let mut c_mat = vec![0.0; dim * dim];
        let set = |m: &mut Vec<f64>, r: Option<usize>, c: Option<usize>, v: f64| {
            if let (Some(r), Some(c)) = (r, c) {
                m[r * dim + c] += v;
            }
        };
        let conduct = |m: &mut Vec<f64>, a: Option<usize>, b: Option<usize>, g: f64| {
            if let Some(i) = a {
                m[i * dim + i] += g;
            }
            if let Some(j) = b {
                m[j * dim + j] += g;
            }
            if let (Some(i), Some(j)) = (a, b) {
                m[i * dim + j] -= g;
                m[j * dim + i] -= g;
            }
        };
        let volt = |n: Option<usize>| n.map_or(0.0, |i| op[i + 1]);
        let mut excitation_row = 0usize;
        let mut src = 0usize;
        for (plan, elem) in pattern.plans().iter().zip(circuit.elements()) {
            match (plan, elem) {
                (Plan::Conductance { a, b }, MnaElement::Resistor { ohms, .. }) => {
                    conduct(&mut g_mat, *a, *b, 1.0 / ohms);
                }
                (Plan::Capacitor { a, b, .. }, MnaElement::Capacitor { farads, .. }) => {
                    conduct(&mut c_mat, *a, *b, *farads);
                }
                (Plan::Inductor { a, b, row, .. }, MnaElement::Inductor { henries, .. }) => {
                    // Branch row: v_a − v_b − jωL·i = 0.
                    set(&mut g_mat, *a, Some(*row), 1.0);
                    set(&mut g_mat, Some(*row), *a, 1.0);
                    set(&mut g_mat, *b, Some(*row), -1.0);
                    set(&mut g_mat, Some(*row), *b, -1.0);
                    c_mat[*row * dim + *row] -= henries;
                }
                (Plan::VSource { p, n, row }, MnaElement::VSource { .. }) => {
                    set(&mut g_mat, *p, Some(*row), 1.0);
                    set(&mut g_mat, Some(*row), *p, 1.0);
                    set(&mut g_mat, *n, Some(*row), -1.0);
                    set(&mut g_mat, Some(*row), *n, -1.0);
                    if src == spec.source {
                        excitation_row = *row;
                    }
                    src += 1;
                }
                (Plan::Fet { d, g, s }, MnaElement::Fet { model, .. }) => {
                    let (_, gds, gm, gsrc) =
                        fet_small_signal(model.as_ref(), volt(*d), volt(*g), volt(*s));
                    set(&mut g_mat, *d, *d, gds);
                    set(&mut g_mat, *d, *g, gm);
                    set(&mut g_mat, *d, *s, gsrc);
                    set(&mut g_mat, *s, *d, -gds);
                    set(&mut g_mat, *s, *g, -gm);
                    set(&mut g_mat, *s, *s, -gsrc);
                    set(&mut g_mat, *d, *d, GMIN);
                    set(&mut g_mat, *s, *s, GMIN);
                }
                _ => unreachable!("pattern/circuit element mismatch"),
            }
        }

        // Real embedding of (G + jωC)(xr + j·xi) = b:
        //   [[G, −ωC], [ωC, G]] · [xr; xi] = [br; bi].
        let freqs = log_grid(spec.f_start, spec.f_stop, spec.points_per_decade);
        let dim2 = 2 * dim;
        let mut lu = LuFactor::new(dim2);
        let mut rhs = vec![0.0; dim2];
        let mut re = Vec::with_capacity(freqs.len());
        let mut im = Vec::with_capacity(freqs.len());
        for &f in &freqs {
            let w = 2.0 * std::f64::consts::PI * f;
            {
                let vals = lu.values_mut();
                for r in 0..dim {
                    for c in 0..dim {
                        let g = g_mat[r * dim + c];
                        let wc = w * c_mat[r * dim + c];
                        vals[r * dim2 + c] = g;
                        vals[r * dim2 + dim + c] = -wc;
                        vals[(dim + r) * dim2 + c] = wc;
                        vals[(dim + r) * dim2 + dim + c] = g;
                    }
                }
            }
            lu.refactor().map_err(|_| MnaError::Singular)?;
            rhs.fill(0.0);
            rhs[excitation_row] = 1.0;
            lu.solve_in_place(&mut rhs);
            re.push(rhs[..dim].to_vec());
            im.push(rhs[dim..].to_vec());
        }
        Ok(AcResult {
            n_nodes: pattern.n_nodes(),
            freqs,
            re,
            im,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::SourceWave;
    use crate::pattern::Pattern;
    use std::sync::Arc;

    #[test]
    fn log_grid_hits_endpoints() {
        let g = log_grid(1.0, 100.0, 2);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[4] - 100.0).abs() < 1e-9);
        let ragged = log_grid(1.0, 30.0, 1);
        assert_eq!(ragged.len(), 3); // 1, 10, then 30 appended
        assert!((ragged[2] - 30.0).abs() < 1e-12);
    }

    /// Single-pole RC low-pass: at the pole, |H| = 1/√2 and phase −45°.
    #[test]
    fn rc_pole_magnitude_and_phase() {
        let (r, c) = (1e3, 1e-12);
        let f_pole = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let mut ckt = MnaCircuit::new();
        ckt.vsource(1, 0, SourceWave::Dc(0.0));
        ckt.resistor(1, 2, r);
        ckt.capacitor(2, 0, c);
        let mut e = Engine::new(Arc::new(Pattern::analyze(&ckt)));
        // Grid from a decade below to a decade above: index 10 lands on
        // the pole exactly.
        let res = e
            .ac(&ckt, &AcSpec::new(0, f_pole / 10.0, f_pole * 10.0, 10))
            .unwrap();
        assert_eq!(res.len(), 21);
        let at_pole = 10;
        assert!((res.freqs()[at_pole] - f_pole).abs() / f_pole < 1e-9);
        let mag = res.magnitude(at_pole, 2);
        let ph = res.phase_deg(at_pole, 2);
        assert!(
            (mag - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6,
            "pole magnitude {mag}"
        );
        assert!((ph + 45.0).abs() < 1e-6, "pole phase {ph}");
        // Passband and stopband sanity.
        assert!(res.magnitude(0, 2) > 0.99);
        assert!(res.magnitude(20, 2) < 0.15);
    }

    /// Series RLC: the inductor branch makes the response second-order,
    /// with the resonance peak where it belongs.
    #[test]
    fn rlc_resonance() {
        let (r, l, c) = (10.0f64, 1e-9f64, 1e-12f64);
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt());
        let mut ckt = MnaCircuit::new();
        ckt.vsource(1, 0, SourceWave::Dc(0.0));
        ckt.resistor(1, 2, r);
        ckt.inductor(2, 3, l);
        ckt.capacitor(3, 0, c);
        let mut e = Engine::new(Arc::new(Pattern::analyze(&ckt)));
        let res = e
            .ac(&ckt, &AcSpec::new(0, f0 / 100.0, f0 * 100.0, 20))
            .unwrap();
        // Far below resonance the cap voltage tracks the source; well
        // above it rolls off at −40 dB/decade.
        assert!(res.magnitude(0, 3) > 0.999);
        let last = res.len() - 1;
        assert!(res.magnitude(last, 3) < 1e-3);
        // At resonance, |V_c| = Q = (1/R)·√(L/C).
        let q = (l / c).sqrt() / r;
        let k0 = res
            .freqs()
            .iter()
            .position(|&f| (f - f0).abs() / f0 < 1e-9)
            .expect("grid hits f0");
        assert!((res.magnitude(k0, 3) - q).abs() / q < 1e-3);
    }
}
