//! The analysis engine: Newton–Raphson DC, adaptive-capable transient,
//! all against one preallocated factorization working set.
//!
//! An [`Engine`] is built from an [`std::sync::Arc`]`<`[`Pattern`]`>` and
//! owns every numeric buffer the pattern's dimension implies. Each solve
//! re-stamps values and re-factors **in place** — the first factorization
//! records a pivot order that [`crate::LuFactor::refactor`] then reuses
//! across Newton iterations and timesteps, so the steady-state transient
//! loop performs no allocation and no fresh pivot search.

use crate::circuit::MnaCircuit;
use crate::pattern::Pattern;
use crate::solver::{LuFactor, SolveStats};
use crate::stamp::{stamp_system, DynamicState, Dynamics, Method, StampSpec};
use crate::waveform::Waveform;
use std::fmt;
use std::sync::Arc;

/// Final conductance from every FET terminal to ground, keeping the
/// Jacobian well-conditioned when devices are off.
pub const GMIN: f64 = 1e-9;
/// Gmin-stepping ladder used to coax large circuits into their DC
/// operating point: solve with heavy shunts first, then tighten.
const GMIN_STEPS: [f64; 4] = [1e-3, 1e-5, 1e-7, GMIN];
/// Newton–Raphson convergence tolerance on node voltages (volts).
const NR_TOL: f64 = 1e-7;
/// Maximum Newton iterations per solve.
const NR_MAX_ITERS: usize = 400;
/// DC source-ramping steps (fractions of the full source values).
const SOURCE_RAMP_STEPS: usize = 4;

/// Analysis failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MnaError {
    /// Newton iteration failed to converge (even after any timestep
    /// halving the transient spec allowed).
    NoConvergence {
        /// Nominal timestep index at which convergence failed (0 for DC).
        at_step: usize,
    },
    /// The MNA matrix was singular (floating node or source loop).
    Singular,
}

impl fmt::Display for MnaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MnaError::NoConvergence { at_step } => {
                write!(f, "newton iteration did not converge at step {at_step}")
            }
            MnaError::Singular => write!(f, "singular MNA matrix (floating node?)"),
        }
    }
}

impl std::error::Error for MnaError {}

/// A transient-analysis request: nominal step, stop time, integration
/// method, and how far the engine may locally halve a non-converging
/// step before giving up.
#[derive(Clone, Copy, Debug)]
pub struct TranSpec {
    /// Nominal timestep (s).
    pub dt: f64,
    /// Stop time (s).
    pub t_stop: f64,
    /// Integration method for the dynamic elements.
    pub method: Method,
    /// Maximum local step-halving depth on convergence failure (0 = fixed
    /// step). Accepted sub-steps are recorded, so the waveform's time axis
    /// stays strictly monotone but need not be uniform.
    pub max_halvings: u32,
}

impl TranSpec {
    /// Backward-Euler transient with up to 4 local halvings.
    pub fn new(dt: f64, t_stop: f64) -> TranSpec {
        TranSpec {
            dt,
            t_stop,
            method: Method::BackwardEuler,
            max_halvings: 4,
        }
    }

    /// Selects the integration method.
    pub fn method(mut self, method: Method) -> TranSpec {
        self.method = method;
        self
    }

    /// Sets the maximum local halving depth.
    pub fn max_halvings(mut self, max_halvings: u32) -> TranSpec {
        self.max_halvings = max_halvings;
        self
    }
}

/// The numeric engine for one topology: preallocated factorization,
/// right-hand side and solution buffers, reused across every DC solve,
/// Newton iteration and timestep.
#[derive(Clone, Debug)]
pub struct Engine {
    pattern: Arc<Pattern>,
    lu: LuFactor,
    b: Vec<f64>,
    x: Vec<f64>,
    saved: Vec<f64>,
}

impl Engine {
    /// Creates an engine (and its buffers) for a topology.
    pub fn new(pattern: Arc<Pattern>) -> Engine {
        let dim = pattern.dim();
        Engine {
            lu: LuFactor::new(dim),
            b: vec![0.0; dim],
            x: vec![0.0; dim],
            saved: vec![0.0; dim],
            pattern,
        }
    }

    /// The topology this engine was built for.
    pub fn pattern(&self) -> &Arc<Pattern> {
        &self.pattern
    }

    /// Factorization-work counters accumulated over this engine's life —
    /// `refactorizations` dominating `factorizations` is the
    /// pivot-order-reuse contract at work.
    pub fn stats(&self) -> SolveStats {
        self.lu.stats()
    }

    /// One Newton solve; `self.x` holds the initial guess and, on
    /// success, the converged solution.
    fn newton(
        &mut self,
        circuit: &MnaCircuit,
        t: f64,
        source_scale: f64,
        gmin: f64,
        dynamics: Dynamics<'_>,
        step: usize,
    ) -> Result<(), MnaError> {
        let dim = self.pattern.dim();
        let n_nodes = self.pattern.n_nodes();
        let linear = !self.pattern.has_fets();
        let spec = StampSpec {
            t,
            source_scale,
            gmin,
            dynamics,
        };
        for _ in 0..NR_MAX_ITERS {
            self.lu.clear();
            self.b.fill(0.0);
            stamp_system(
                &self.pattern,
                circuit,
                &self.x,
                &mut self.lu,
                &mut self.b,
                &spec,
            );
            self.lu.refactor().map_err(|_| MnaError::Singular)?;
            self.lu.solve_in_place(&mut self.b);
            if linear {
                // No nonlinear elements: the first solve is exact.
                self.x.copy_from_slice(&self.b);
                return Ok(());
            }
            let mut delta: f64 = 0.0;
            for i in 0..n_nodes {
                delta = delta.max((self.b[i] - self.x[i]).abs());
            }
            // Damped update for large steps keeps the FET linearization in
            // its region of validity.
            let relax = if delta > 0.5 { 0.5 / delta } else { 1.0 };
            for i in 0..dim {
                self.x[i] += (self.b[i] - self.x[i]) * relax;
            }
            if delta < NR_TOL {
                return Ok(());
            }
        }
        Err(MnaError::NoConvergence { at_step: step })
    }

    /// Solves the DC operating point at `t = 0` with source ramping and
    /// gmin stepping, returning node voltages indexed by node
    /// (`result[0]` is ground, 0 V).
    ///
    /// # Errors
    ///
    /// Returns [`MnaError`] when the Newton iteration cannot converge or
    /// the system is singular.
    ///
    /// # Panics
    ///
    /// Panics when the circuit's topology does not match the engine's
    /// pattern.
    pub fn dc(&mut self, circuit: &MnaCircuit) -> Result<Vec<f64>, MnaError> {
        assert!(
            self.pattern.matches(circuit),
            "circuit topology does not match the engine's pattern"
        );
        self.x.fill(0.0);
        // Source stepping at heavy gmin, then gmin stepping at full
        // sources — no circuit cloning, scaling happens in the stamp.
        for step in 1..=SOURCE_RAMP_STEPS {
            let frac = step as f64 / SOURCE_RAMP_STEPS as f64;
            self.newton(circuit, 0.0, frac, GMIN_STEPS[0], Dynamics::Dc, 0)?;
        }
        for &gmin in &GMIN_STEPS[1..] {
            self.newton(circuit, 0.0, 1.0, gmin, Dynamics::Dc, 0)?;
        }
        let mut volts = vec![0.0; self.pattern.n_nodes() + 1];
        volts[1..].copy_from_slice(&self.x[..self.pattern.n_nodes()]);
        Ok(volts)
    }

    /// Advances one step of size `dt` from time `t0`; on convergence
    /// failure, locally halves the step (recording the accepted interior
    /// points) up to `halvings` deep.
    #[allow(clippy::too_many_arguments)]
    fn advance(
        &mut self,
        circuit: &MnaCircuit,
        t0: f64,
        dt: f64,
        method: Method,
        halvings: u32,
        step: usize,
        state: &mut DynamicState,
        wave: &mut Waveform,
    ) -> Result<(), MnaError> {
        self.saved.copy_from_slice(&self.x);
        let attempt = self.newton(
            circuit,
            t0 + dt,
            1.0,
            GMIN,
            Dynamics::Tran {
                method,
                dt,
                state: &*state,
            },
            step,
        );
        match attempt {
            Ok(()) => {
                state.accept(&self.pattern, circuit, &self.x, method, dt);
                wave.push(t0 + dt, &self.x);
                Ok(())
            }
            Err(MnaError::NoConvergence { .. }) if halvings > 0 => {
                // Retry from the last accepted solution at half the step.
                self.x.copy_from_slice(&self.saved);
                let half = dt / 2.0;
                self.advance(circuit, t0, half, method, halvings - 1, step, state, wave)?;
                self.advance(
                    circuit,
                    t0 + half,
                    half,
                    method,
                    halvings - 1,
                    step,
                    state,
                    wave,
                )
            }
            Err(e) => Err(e),
        }
    }

    /// Runs a transient analysis from the DC operating point, recording a
    /// strictly monotone [`Waveform`].
    ///
    /// # Errors
    ///
    /// Returns [`MnaError`] on a singular system or when a step fails to
    /// converge even at the finest allowed sub-step.
    ///
    /// # Panics
    ///
    /// Panics unless `dt` and `t_stop` are positive, or when the circuit's
    /// topology does not match the engine's pattern.
    pub fn tran(&mut self, circuit: &MnaCircuit, spec: &TranSpec) -> Result<Waveform, MnaError> {
        assert!(
            spec.dt > 0.0 && spec.t_stop > 0.0,
            "dt and t_stop must be positive"
        );
        self.dc(circuit)?; // leaves self.x at the operating point
        let mut state = DynamicState::init(&self.pattern, &self.x);
        let capacity = (spec.t_stop / spec.dt).ceil() as usize + 1;
        let mut wave = Waveform::new(&self.pattern, capacity);
        wave.push(0.0, &self.x);
        // Nominal times come from the step index (`k·dt`, not
        // accumulation), clamped to `t_stop` so the run ends exactly there
        // regardless of how `t_stop/dt` rounds.
        let mut t0 = 0.0;
        let mut k = 0usize;
        while t0 < spec.t_stop {
            k += 1;
            let t1 = (k as f64 * spec.dt).min(spec.t_stop);
            self.advance(
                circuit,
                t0,
                t1 - t0,
                spec.method,
                spec.max_halvings,
                k,
                &mut state,
                &mut wave,
            )?;
            t0 = t1;
        }
        Ok(wave)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::SourceWave;
    use crate::waveform::Probe;
    use cnfet_device::{CnfetModel, FetModel, Polarity};

    fn engine_for(c: &MnaCircuit) -> Engine {
        Engine::new(Arc::new(Pattern::analyze(c)))
    }

    #[test]
    fn resistive_divider_dc() {
        let mut c = MnaCircuit::new();
        c.vsource(1, 0, SourceWave::Dc(2.0));
        c.resistor(1, 2, 1e3);
        c.resistor(2, 0, 3e3);
        let v = engine_for(&c).dc(&c).unwrap();
        assert!((v[2] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn inductor_is_dc_short() {
        // V — R — L to ground: all the drop is across the resistor.
        let mut c = MnaCircuit::new();
        c.vsource(1, 0, SourceWave::Dc(1.0));
        c.resistor(1, 2, 1e3);
        c.inductor(2, 0, 1e-9);
        let mut e = engine_for(&c);
        let v = e.dc(&c).unwrap();
        assert!(v[2].abs() < 1e-9, "inductor node should sit at 0 V");
    }

    #[test]
    fn floating_node_is_singular() {
        let mut c = MnaCircuit::new();
        c.vsource(1, 0, SourceWave::Dc(1.0));
        c.resistor(1, 0, 1e3);
        c.resistor(2, 3, 1e3); // island with no path to the rest
        assert_eq!(engine_for(&c).dc(&c), Err(MnaError::Singular));
    }

    #[test]
    fn parallel_source_loop_is_singular() {
        let mut c = MnaCircuit::new();
        c.vsource(1, 0, SourceWave::Dc(1.0));
        c.vsource(1, 0, SourceWave::Dc(2.0));
        assert_eq!(engine_for(&c).dc(&c), Err(MnaError::Singular));
    }

    /// RC step response vs the analytic exponential, both methods.
    #[test]
    fn rc_step_matches_analytic() {
        for method in [Method::BackwardEuler, Method::Trapezoidal] {
            let mut c = MnaCircuit::new();
            c.vsource(1, 0, SourceWave::Pwl(vec![(0.0, 0.0), (1e-12, 1.0)]));
            c.resistor(1, 2, 1e3);
            c.capacitor(2, 0, 1e-12); // tau = 1 ns
            let mut e = engine_for(&c);
            let wave = e
                .tran(&c, &TranSpec::new(2e-12, 5e-9).method(method))
                .unwrap();
            for (k, &t) in wave.time().iter().enumerate() {
                if t < 1e-10 {
                    continue;
                }
                let expected = 1.0 - (-(t - 1e-12) / 1e-9).exp();
                let got = wave.voltage(2)[k];
                assert!(
                    (got - expected).abs() < 0.01,
                    "{method:?} t={t}: got {got}, expected {expected}"
                );
            }
            // Linear circuit: one full factorization, everything after
            // reuses the recorded pivot order.
            let stats = e.stats();
            assert_eq!(stats.factorizations, 1);
            assert_eq!(stats.pivot_rebuilds, 0);
            assert!(stats.refactorizations > 2000, "{stats:?}");
        }
    }

    /// Series RLC step response against the underdamped analytic form.
    #[test]
    fn rlc_step_matches_analytic() {
        // L = 1 nH, C = 1 pF, R chosen for zeta = 0.3.
        let (l, cap) = (1e-9f64, 1e-12f64);
        let w0 = 1.0 / (l * cap).sqrt();
        let zeta = 0.3;
        let r = 2.0 * zeta * (l / cap).sqrt();
        let mut c = MnaCircuit::new();
        c.vsource(1, 0, SourceWave::Pwl(vec![(0.0, 0.0), (1e-14, 1.0)]));
        c.resistor(1, 2, r);
        c.inductor(2, 3, l);
        c.capacitor(3, 0, cap);
        let mut e = engine_for(&c);
        let wave = e
            .tran(
                &c,
                &TranSpec::new(2e-13, 1.5e-9).method(Method::Trapezoidal),
            )
            .unwrap();
        let wd = w0 * (1.0 - zeta * zeta).sqrt();
        for (k, &t) in wave.time().iter().enumerate() {
            if t < 1e-12 {
                continue;
            }
            let tt = t - 1e-14;
            let env = (-zeta * w0 * tt).exp();
            let expected = 1.0 - env * ((wd * tt).cos() + zeta * w0 / wd * (wd * tt).sin());
            let got = wave.voltage(3)[k];
            assert!(
                (got - expected).abs() < 0.02,
                "t={t}: got {got}, expected {expected}"
            );
        }
        // The inductor branch current is probed and ends near DC: i = 0.
        let i_l = wave.probe(Probe::InductorCurrent(0));
        assert!(i_l.last().unwrap().abs() < 1e-3 / r);
    }

    /// Trapezoidal integration is at least second-order on the RC case:
    /// halving dt shrinks the max error by ~4x.
    #[test]
    fn trapezoidal_dt_halving_is_second_order() {
        // Ramp aligned to both grids (80 ps = 2×40 ps = 4×20 ps), so the
        // only integration error is the smooth-region truncation error.
        let ramp_end = 80e-12;
        let tau = 1e-9;
        let analytic = |t: f64| -> f64 {
            let m = 1.0 / ramp_end;
            if t <= ramp_end {
                m * (t - tau + tau * (-t / tau).exp())
            } else {
                let v_end = m * (ramp_end - tau + tau * (-ramp_end / tau).exp());
                1.0 + (v_end - 1.0) * (-(t - ramp_end) / tau).exp()
            }
        };
        let max_error = |dt: f64| -> f64 {
            let mut c = MnaCircuit::new();
            c.vsource(1, 0, SourceWave::Pwl(vec![(0.0, 0.0), (ramp_end, 1.0)]));
            c.resistor(1, 2, 1e3);
            c.capacitor(2, 0, 1e-12);
            let mut e = engine_for(&c);
            let wave = e
                .tran(
                    &c,
                    &TranSpec::new(dt, 2e-9)
                        .method(Method::Trapezoidal)
                        .max_halvings(0),
                )
                .unwrap();
            wave.time()
                .iter()
                .zip(wave.voltage(2))
                .map(|(&t, &v)| (v - analytic(t)).abs())
                .fold(0.0f64, f64::max)
        };
        let (coarse, fine) = (max_error(40e-12), max_error(20e-12));
        let ratio = coarse / fine;
        assert!(
            ratio > 3.5,
            "expected ~4x error reduction per dt halving, got {ratio:.2} \
             (coarse {coarse:.3e}, fine {fine:.3e})"
        );
    }

    #[test]
    fn cnfet_inverter_transient_switches() {
        let model = CnfetModel::poly_65nm();
        let nd: Arc<dyn FetModel + Send + Sync> = Arc::new(model.device(Polarity::N, 4, 130e-9));
        let pd: Arc<dyn FetModel + Send + Sync> = Arc::new(model.device(Polarity::P, 4, 130e-9));
        let mut c = MnaCircuit::new();
        let (vdd, vin, vout) = (1, 2, 3);
        c.vsource(vdd, 0, SourceWave::Dc(1.0));
        c.vsource(
            vin,
            0,
            SourceWave::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 10e-12,
                rise: 2e-12,
                fall: 2e-12,
                width: 100e-12,
                period: 0.0,
            },
        );
        for (d, g, s, m) in [(vout, vin, vdd, &pd), (vout, vin, 0, &nd)] {
            let cg = m.cgate();
            c.capacitor(g, s, cg / 2.0);
            c.capacitor(g, d, cg / 2.0);
            c.capacitor(d, 0, m.cdrain());
            c.fet(d, g, s, Arc::clone(m));
        }
        c.capacitor(vout, 0, 50e-18);
        let mut e = engine_for(&c);
        let wave = e.tran(&c, &TranSpec::new(0.25e-12, 80e-12)).unwrap();
        let v = wave.voltage(vout);
        assert!(v[0] > 0.95, "initial output should be high, got {}", v[0]);
        assert!(
            *v.last().unwrap() < 0.05,
            "final output should be low, got {}",
            v.last().unwrap()
        );
        // Nonlinear circuit: Newton re-stamps every iteration, but the
        // pivot order survives nearly all of them.
        let stats = e.stats();
        assert!(
            stats.refactorizations > 10 * stats.factorizations,
            "{stats:?}"
        );
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn topology_mismatch_is_rejected() {
        let mut c = MnaCircuit::new();
        c.vsource(1, 0, SourceWave::Dc(1.0));
        c.resistor(1, 0, 1e3);
        let mut e = engine_for(&c);
        c.resistor(1, 0, 1e3); // now a different topology
        let _ = e.dc(&c);
    }
}
