//! Transient result storage: strictly monotone timepoints with typed
//! probes over node voltages and branch currents.

use crate::pattern::Pattern;

/// A typed handle into a [`Waveform`]'s traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Probe {
    /// Voltage of a circuit node (node 0 is ground: identically zero).
    Node(usize),
    /// Branch current of the i-th voltage source (insertion order;
    /// positive flows into the positive terminal through the source, so
    /// supplies see negative current).
    SourceCurrent(usize),
    /// Branch current of the i-th inductor (insertion order; positive
    /// flows from terminal `a` to `b`).
    InductorCurrent(usize),
}

/// Recorded `.tran` waveforms: one strictly increasing time axis plus a
/// trace per unknown. Adaptive steps may land between nominal timepoints;
/// monotonicity is asserted on every append.
#[derive(Clone, Debug)]
pub struct Waveform {
    n_nodes: usize,
    n_vsources: usize,
    n_inductors: usize,
    time: Vec<f64>,
    /// One column per unknown, in unknown order (nodes, then source
    /// branches, then inductor branches).
    columns: Vec<Vec<f64>>,
    /// The ground trace (all zeros), kept sample-aligned so
    /// `probe(Node(0))` returns a real slice.
    ground: Vec<f64>,
}

impl Waveform {
    pub(crate) fn new(pattern: &Pattern, capacity: usize) -> Waveform {
        Waveform {
            n_nodes: pattern.n_nodes(),
            n_vsources: pattern.n_vsources(),
            n_inductors: pattern.n_inductors(),
            time: Vec::with_capacity(capacity),
            columns: vec![Vec::with_capacity(capacity); pattern.dim()],
            ground: Vec::with_capacity(capacity),
        }
    }

    /// Appends a sample; `x` is the full unknown vector.
    ///
    /// # Panics
    ///
    /// Panics when `t` does not strictly increase.
    pub(crate) fn push(&mut self, t: f64, x: &[f64]) {
        if let Some(&last) = self.time.last() {
            assert!(t > last, "non-monotone timepoint: {t} after {last}");
        }
        self.time.push(t);
        self.ground.push(0.0);
        for (col, &v) in self.columns.iter_mut().zip(x) {
            col.push(v);
        }
    }

    /// Sample times (strictly increasing).
    pub fn time(&self) -> &[f64] {
        &self.time
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// Whether the run produced no samples.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Number of node-voltage traces (excluding ground).
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// The trace behind a probe.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range probe.
    pub fn probe(&self, probe: Probe) -> &[f64] {
        match probe {
            Probe::Node(0) => &self.ground,
            Probe::Node(n) => {
                assert!(n <= self.n_nodes, "node {n} out of range");
                &self.columns[n - 1]
            }
            Probe::SourceCurrent(s) => {
                assert!(s < self.n_vsources, "source {s} out of range");
                &self.columns[self.n_nodes + s]
            }
            Probe::InductorCurrent(l) => {
                assert!(l < self.n_inductors, "inductor {l} out of range");
                &self.columns[self.n_nodes + self.n_vsources + l]
            }
        }
    }

    /// Voltage trace of a node (0 = ground).
    pub fn voltage(&self, node: usize) -> &[f64] {
        self.probe(Probe::Node(node))
    }

    /// Branch-current trace of the i-th voltage source.
    pub fn source_current(&self, idx: usize) -> &[f64] {
        self.probe(Probe::SourceCurrent(idx))
    }

    /// Renders selected probes as a deterministic whitespace-separated
    /// table (`time` column first), the canonical form for golden files
    /// and wire transport.
    pub fn render_table(&self, probes: &[(&str, Probe)]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("time");
        for (label, _) in probes {
            out.push(' ');
            out.push_str(label);
        }
        out.push('\n');
        let traces: Vec<&[f64]> = probes.iter().map(|(_, p)| self.probe(*p)).collect();
        for (k, t) in self.time.iter().enumerate() {
            let _ = write!(out, "{t:.6e}");
            for trace in &traces {
                let _ = write!(out, " {:.6e}", trace[k]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{MnaCircuit, SourceWave};

    fn pattern() -> Pattern {
        let mut c = MnaCircuit::new();
        c.vsource(1, 0, SourceWave::Dc(1.0));
        c.resistor(1, 2, 1e3);
        Pattern::analyze(&c)
    }

    #[test]
    fn probes_address_unknowns() {
        let p = pattern();
        let mut w = Waveform::new(&p, 4);
        w.push(0.0, &[1.0, 0.5, -1e-3]);
        w.push(1e-9, &[1.0, 0.6, -2e-3]);
        assert_eq!(w.len(), 2);
        assert_eq!(w.voltage(0), &[0.0, 0.0]);
        assert_eq!(w.voltage(2), &[0.5, 0.6]);
        assert_eq!(w.source_current(0), &[-1e-3, -2e-3]);
    }

    #[test]
    #[should_panic(expected = "non-monotone")]
    fn non_monotone_push_panics() {
        let p = pattern();
        let mut w = Waveform::new(&p, 4);
        w.push(1e-9, &[0.0, 0.0, 0.0]);
        w.push(1e-9, &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn table_is_deterministic() {
        let p = pattern();
        let mut w = Waveform::new(&p, 2);
        w.push(0.0, &[1.0, 0.5, -1e-3]);
        let table = w.render_table(&[("in", Probe::Node(1)), ("i(v1)", Probe::SourceCurrent(0))]);
        assert_eq!(table, "time in i(v1)\n0.000000e0 1.000000e0 -1.000000e-3\n");
    }
}
