//! The symbolic half of the engine: unknown indexing computed once per
//! circuit *topology* and shared across every same-topology circuit.
//!
//! [`Pattern::analyze`] resolves each element's terminals into unknown
//! indices (nodes `1..` map to unknowns `0..`, then one branch-current
//! unknown per voltage source and per inductor) and records a per-element
//! stamping plan. Numeric stamping against a pattern is a flat walk with
//! no name resolution or counting — and a [`PatternCache`] memoizes
//! patterns by topology signature, so repeated same-topology circuits
//! (sweep corners, load sweeps) do **zero symbolic re-analysis**.

use crate::circuit::{MnaCircuit, MnaElement};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-element stamping plan with pre-resolved unknown indices
/// (`None` = ground terminal).
#[derive(Clone, Copy, Debug)]
pub(crate) enum Plan {
    /// Resistor between two nodes.
    Conductance { a: Option<usize>, b: Option<usize> },
    /// Capacitor with its dynamic-state slot.
    Capacitor {
        a: Option<usize>,
        b: Option<usize>,
        state: usize,
    },
    /// Inductor with its branch row and dynamic-state slot.
    Inductor {
        a: Option<usize>,
        b: Option<usize>,
        row: usize,
        state: usize,
    },
    /// Voltage source with its branch row.
    VSource {
        p: Option<usize>,
        n: Option<usize>,
        row: usize,
    },
    /// FET terminals.
    Fet {
        d: Option<usize>,
        g: Option<usize>,
        s: Option<usize>,
    },
}

/// The topology signature: node count plus per-element kind and terminal
/// indices. Two circuits with equal signatures share a `Pattern`.
fn signature_of(circuit: &MnaCircuit) -> Vec<u64> {
    let mut sig = Vec::with_capacity(1 + circuit.elements().len() * 4);
    sig.push(circuit.node_count() as u64);
    for e in circuit.elements() {
        match e {
            MnaElement::Resistor { a, b, .. } => sig.extend([1, *a as u64, *b as u64]),
            MnaElement::Capacitor { a, b, .. } => sig.extend([2, *a as u64, *b as u64]),
            MnaElement::Inductor { a, b, .. } => sig.extend([3, *a as u64, *b as u64]),
            MnaElement::VSource { p, n, .. } => sig.extend([4, *p as u64, *n as u64]),
            MnaElement::Fet { d, g, s, .. } => sig.extend([5, *d as u64, *g as u64, *s as u64]),
        }
    }
    sig
}

/// The symbolic structure of a circuit's MNA system: unknown counts and
/// per-element stamping plans. Built once per topology by
/// [`Pattern::analyze`]; numeric stamping and factorization then reuse it
/// for every same-topology circuit.
#[derive(Clone, Debug)]
pub struct Pattern {
    n_nodes: usize,
    n_vsources: usize,
    n_inductors: usize,
    n_capacitors: usize,
    has_fets: bool,
    plans: Vec<Plan>,
    signature: Vec<u64>,
}

impl Pattern {
    /// Analyzes a circuit's topology: resolves every terminal to its
    /// unknown index and assigns branch rows (voltage sources first, then
    /// inductors, in element order).
    pub fn analyze(circuit: &MnaCircuit) -> Pattern {
        let n_nodes = circuit.node_count() - 1;
        let n_vsources = circuit.vsource_count();
        let idx = |node: usize| if node == 0 { None } else { Some(node - 1) };

        let mut plans = Vec::with_capacity(circuit.elements().len());
        let mut src = 0usize;
        let mut ind = 0usize;
        let mut cap = 0usize;
        let mut has_fets = false;
        for e in circuit.elements() {
            plans.push(match e {
                MnaElement::Resistor { a, b, .. } => Plan::Conductance {
                    a: idx(*a),
                    b: idx(*b),
                },
                MnaElement::Capacitor { a, b, .. } => {
                    cap += 1;
                    Plan::Capacitor {
                        a: idx(*a),
                        b: idx(*b),
                        state: cap - 1,
                    }
                }
                MnaElement::Inductor { a, b, .. } => {
                    ind += 1;
                    Plan::Inductor {
                        a: idx(*a),
                        b: idx(*b),
                        row: n_nodes + n_vsources + ind - 1,
                        state: ind - 1,
                    }
                }
                MnaElement::VSource { p, n, .. } => {
                    src += 1;
                    Plan::VSource {
                        p: idx(*p),
                        n: idx(*n),
                        row: n_nodes + src - 1,
                    }
                }
                MnaElement::Fet { d, g, s, .. } => {
                    has_fets = true;
                    Plan::Fet {
                        d: idx(*d),
                        g: idx(*g),
                        s: idx(*s),
                    }
                }
            });
        }
        Pattern {
            n_nodes,
            n_vsources,
            n_inductors: ind,
            n_capacitors: cap,
            has_fets,
            plans,
            signature: signature_of(circuit),
        }
    }

    /// Number of node-voltage unknowns (excluding ground).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of voltage-source branch-current unknowns.
    pub fn n_vsources(&self) -> usize {
        self.n_vsources
    }

    /// Number of inductor branch-current unknowns.
    pub fn n_inductors(&self) -> usize {
        self.n_inductors
    }

    /// Number of capacitors (dynamic-state slots).
    pub fn n_capacitors(&self) -> usize {
        self.n_capacitors
    }

    /// Whether the topology contains nonlinear (FET) elements.
    pub fn has_fets(&self) -> bool {
        self.has_fets
    }

    /// System dimension: node unknowns plus branch-current unknowns.
    pub fn dim(&self) -> usize {
        self.n_nodes + self.n_vsources + self.n_inductors
    }

    /// The topology signature this pattern was analyzed from.
    pub fn signature(&self) -> &[u64] {
        &self.signature
    }

    /// Whether a circuit has exactly this pattern's topology (same element
    /// kinds and terminals in the same order; values are free to differ).
    pub fn matches(&self, circuit: &MnaCircuit) -> bool {
        self.signature == signature_of(circuit)
    }

    pub(crate) fn plans(&self) -> &[Plan] {
        &self.plans
    }
}

/// Memoizes [`Pattern`]s by topology signature, so every same-topology
/// circuit — a sweep corner, a load point, a Newton re-solve — shares one
/// symbolic analysis. Thread-safe; hold one per subsystem (e.g. a
/// process-wide cache for cell characterization).
#[derive(Debug, Default)]
pub struct PatternCache {
    patterns: Mutex<HashMap<Vec<u64>, Arc<Pattern>>>,
    builds: AtomicU64,
}

impl PatternCache {
    /// Creates an empty cache.
    pub fn new() -> PatternCache {
        PatternCache::default()
    }

    /// Returns the pattern for the circuit's topology, analyzing it only
    /// if no same-topology circuit was seen before.
    pub fn get_or_analyze(&self, circuit: &MnaCircuit) -> Arc<Pattern> {
        let sig = signature_of(circuit);
        let mut map = self.patterns.lock().unwrap();
        if let Some(p) = map.get(&sig) {
            return Arc::clone(p);
        }
        self.builds.fetch_add(1, Ordering::Relaxed);
        let p = Arc::new(Pattern::analyze(circuit));
        map.insert(sig, Arc::clone(&p));
        p
    }

    /// How many symbolic analyses ran — stays flat while every request
    /// hits a known topology.
    pub fn symbolic_builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Number of distinct topologies seen.
    pub fn len(&self) -> usize {
        self.patterns.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::SourceWave;

    fn rc(ohms: f64, farads: f64) -> MnaCircuit {
        let mut c = MnaCircuit::new();
        c.vsource(1, 0, SourceWave::Dc(1.0));
        c.resistor(1, 2, ohms);
        c.capacitor(2, 0, farads);
        c
    }

    #[test]
    fn unknown_indexing() {
        let mut c = rc(1e3, 1e-12);
        c.inductor(2, 3, 1e-9);
        let p = Pattern::analyze(&c);
        assert_eq!(p.n_nodes(), 3);
        assert_eq!(p.n_vsources(), 1);
        assert_eq!(p.n_inductors(), 1);
        assert_eq!(p.n_capacitors(), 1);
        assert_eq!(p.dim(), 5); // 3 nodes + 1 source branch + 1 inductor branch
        assert!(!p.has_fets());
    }

    #[test]
    fn same_topology_corners_do_zero_symbolic_reanalysis() {
        let cache = PatternCache::new();
        // Ten "corners": same topology, different values.
        let first = cache.get_or_analyze(&rc(1e3, 1e-12));
        for k in 1..10 {
            let p = cache.get_or_analyze(&rc(1e3 * k as f64, 2e-12 * k as f64));
            assert!(Arc::ptr_eq(&first, &p), "corner {k} rebuilt the pattern");
        }
        assert_eq!(cache.symbolic_builds(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_topologies_get_their_own_pattern() {
        let cache = PatternCache::new();
        cache.get_or_analyze(&rc(1e3, 1e-12));
        let mut other = rc(1e3, 1e-12);
        other.resistor(2, 0, 5e3);
        cache.get_or_analyze(&other);
        assert_eq!(cache.symbolic_builds(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn matches_ignores_values_but_not_structure() {
        let p = Pattern::analyze(&rc(1e3, 1e-12));
        assert!(p.matches(&rc(9e9, 5e-15)));
        let mut other = rc(1e3, 1e-12);
        other.resistor(2, 0, 5e3);
        assert!(!p.matches(&other));
    }
}
