//! Reusable-factorization MNA engine: symbolic structure split from
//! numeric values, with transient and AC small-signal analysis.
//!
//! The crate separates *what a circuit is shaped like* from *what its
//! values are*:
//!
//! - [`MnaCircuit`] holds elements (R, C, L, voltage sources, FETs) over
//!   plain `usize` nodes (0 = ground).
//! - [`Pattern::analyze`] runs the symbolic half **once per topology**:
//!   unknown indexing (nodes, then source branches, then inductor
//!   branches) and per-element stamping plans. A [`PatternCache`]
//!   memoizes patterns, so same-topology circuits — sweep corners, load
//!   points — do zero symbolic re-analysis.
//! - [`Engine`] owns the numeric half: a preallocated [`LuFactor`] that
//!   is re-stamped and re-factored **in place** per Newton iteration and
//!   per timestep, reusing the recorded pivot order
//!   ([`LuFactor::refactor`]) so steady-state solving allocates nothing
//!   and searches no pivots.
//!
//! Transient analysis ([`Engine::tran`]) integrates capacitors and
//! inductors through companion models (backward-Euler or trapezoidal,
//! see [`Method`]) with local timestep halving on convergence failure,
//! recording a strictly monotone [`Waveform`] with typed [`Probe`]s. AC
//! analysis ([`Engine::ac`]) linearizes about the DC operating point and
//! sweeps a log frequency grid through a real 2n×2n embedding of the
//! complex system. The [`measure`] module extracts `.measure`-style
//! quantities (crossings, delay, slew, supply energy) from waveforms.
//!
//! ```
//! use cnfet_mna::{Engine, MnaCircuit, Pattern, SourceWave, TranSpec};
//! use std::sync::Arc;
//!
//! // 1 kΩ into 1 pF, stepped from 0 to 1 V: classic RC charge.
//! let mut c = MnaCircuit::new();
//! c.vsource(1, 0, SourceWave::Pwl(vec![(0.0, 0.0), (1e-12, 1.0)]));
//! c.resistor(1, 2, 1e3);
//! c.capacitor(2, 0, 1e-12);
//!
//! let pattern = Arc::new(Pattern::analyze(&c));
//! let mut engine = Engine::new(pattern);
//! let wave = engine.tran(&c, &TranSpec::new(2e-12, 3e-9)).unwrap();
//! let v_end = *wave.voltage(2).last().unwrap();
//! assert!((v_end - 0.95).abs() < 0.05); // ~3 time constants in
//! ```

#![warn(missing_docs)]

mod ac;
mod circuit;
mod engine;
pub mod measure;
mod pattern;
mod solver;
mod stamp;
mod waveform;

pub use ac::{AcResult, AcSpec};
pub use circuit::{MnaCircuit, MnaElement, SourceWave};
pub use engine::{Engine, MnaError, TranSpec, GMIN};
pub use pattern::{Pattern, PatternCache};
pub use solver::{LuFactor, Singular, SolveStats};
pub use stamp::Method;
pub use waveform::{Probe, Waveform};
