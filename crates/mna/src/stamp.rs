//! Numeric stamping: fills the preallocated system matrix and right-hand
//! side from a circuit's values against its symbolic [`Pattern`].
//!
//! Dynamic elements use companion models — backward-Euler or trapezoidal
//! — referencing the previous step's [`DynamicState`]; FETs are
//! linearized about the candidate solution with numerically-differenced
//! conductances, exactly the scheme the `cnfet-spice` simulator used.

use crate::circuit::{MnaCircuit, MnaElement};
use crate::pattern::{Pattern, Plan};
use crate::solver::LuFactor;
use cnfet_device::FetModel;

/// Numeric integration method for capacitors and inductors in transient
/// analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Backward Euler: first-order, strongly damped, unconditionally
    /// stable — the robust default for switching waveforms.
    BackwardEuler,
    /// Trapezoidal: second-order accurate, the right choice when waveform
    /// fidelity matters (convergence studies, AC-adjacent work).
    Trapezoidal,
}

/// Previous-step state of the dynamic elements: one slot per capacitor
/// (branch voltage and current) and per inductor (branch current and
/// voltage), indexed by the pattern's state slots.
#[derive(Clone, Debug)]
pub(crate) struct DynamicState {
    pub cap_v: Vec<f64>,
    pub cap_i: Vec<f64>,
    pub ind_i: Vec<f64>,
    pub ind_v: Vec<f64>,
}

impl DynamicState {
    /// State at a converged operating point `x` (capacitor currents and
    /// inductor voltages are zero in steady state).
    pub fn init(pattern: &Pattern, x: &[f64]) -> DynamicState {
        let mut state = DynamicState {
            cap_v: vec![0.0; pattern.n_capacitors()],
            cap_i: vec![0.0; pattern.n_capacitors()],
            ind_i: vec![0.0; pattern.n_inductors()],
            ind_v: vec![0.0; pattern.n_inductors()],
        };
        for plan in pattern.plans() {
            match plan {
                Plan::Capacitor { a, b, state: k } => {
                    state.cap_v[*k] = voltage_of(x, *a) - voltage_of(x, *b);
                }
                Plan::Inductor { row, state: k, .. } => {
                    state.ind_i[*k] = x[*row];
                }
                _ => {}
            }
        }
        state
    }

    /// Accepts the solution `x` of a step of size `dt`, rolling every
    /// dynamic element's state forward under the given method.
    pub fn accept(
        &mut self,
        pattern: &Pattern,
        circuit: &MnaCircuit,
        x: &[f64],
        method: Method,
        dt: f64,
    ) {
        for (plan, elem) in pattern.plans().iter().zip(circuit.elements()) {
            match (plan, elem) {
                (Plan::Capacitor { a, b, state: k }, MnaElement::Capacitor { farads, .. }) => {
                    let v = voltage_of(x, *a) - voltage_of(x, *b);
                    let i = match method {
                        Method::BackwardEuler => farads / dt * (v - self.cap_v[*k]),
                        Method::Trapezoidal => {
                            2.0 * farads / dt * (v - self.cap_v[*k]) - self.cap_i[*k]
                        }
                    };
                    self.cap_v[*k] = v;
                    self.cap_i[*k] = i;
                }
                (
                    Plan::Inductor {
                        a,
                        b,
                        row,
                        state: k,
                    },
                    MnaElement::Inductor { .. },
                ) => {
                    self.ind_i[*k] = x[*row];
                    self.ind_v[*k] = voltage_of(x, *a) - voltage_of(x, *b);
                }
                _ => {}
            }
        }
    }
}

/// What the dynamic elements contribute.
pub(crate) enum Dynamics<'a> {
    /// DC: capacitors open, inductors short.
    Dc,
    /// One transient step of size `dt` from the previous state.
    Tran {
        method: Method,
        dt: f64,
        state: &'a DynamicState,
    },
}

/// Stamping context: evaluation time, source scaling (DC ramping), gmin,
/// and the dynamic-element mode.
pub(crate) struct StampSpec<'a> {
    pub t: f64,
    pub source_scale: f64,
    pub gmin: f64,
    pub dynamics: Dynamics<'a>,
}

#[inline]
fn voltage_of(x: &[f64], idx: Option<usize>) -> f64 {
    match idx {
        None => 0.0,
        Some(i) => x[i],
    }
}

fn stamp_conductance(lu: &mut LuFactor, a: Option<usize>, b: Option<usize>, g: f64) {
    if let Some(i) = a {
        lu.stamp(i, i, g);
    }
    if let Some(j) = b {
        lu.stamp(j, j, g);
    }
    if let (Some(i), Some(j)) = (a, b) {
        lu.stamp(i, j, -g);
        lu.stamp(j, i, -g);
    }
}

/// Drain current (into the drain) at the given terminal voltages, with
/// polarity and source/drain symmetry handled.
pub(crate) fn fet_current(model: &dyn FetModel, vd: f64, vg: f64, vs: f64) -> f64 {
    use cnfet_device::Polarity;
    match model.polarity() {
        Polarity::N => {
            if vd >= vs {
                model.ids(vg - vs, vd - vs)
            } else {
                -model.ids(vg - vd, vs - vd)
            }
        }
        // A p-device is the n-device under voltage mirroring.
        Polarity::P => {
            if vd <= vs {
                -model.ids(vs - vg, vs - vd)
            } else {
                model.ids(vd - vg, vd - vs)
            }
        }
    }
}

/// Small-signal conductances `(gds, gm, gs)` about a terminal-voltage
/// point, by numerical differentiation (robust against model kinks).
pub(crate) fn fet_small_signal(
    model: &dyn FetModel,
    vd: f64,
    vg: f64,
    vs: f64,
) -> (f64, f64, f64, f64) {
    let id0 = fet_current(model, vd, vg, vs);
    let h = 1e-6;
    let gds = (fet_current(model, vd + h, vg, vs) - id0) / h;
    let gm = (fet_current(model, vd, vg + h, vs) - id0) / h;
    let gs = (fet_current(model, vd, vg, vs + h) - id0) / h;
    (id0, gds, gm, gs)
}

#[allow(clippy::too_many_arguments)]
fn stamp_fet(
    lu: &mut LuFactor,
    b: &mut [f64],
    x: &[f64],
    d: Option<usize>,
    g: Option<usize>,
    s: Option<usize>,
    model: &dyn FetModel,
    gmin: f64,
) {
    let vd = voltage_of(x, d);
    let vg = voltage_of(x, g);
    let vs = voltage_of(x, s);
    let (id0, gds, gm, gsrc) = fet_small_signal(model, vd, vg, vs);

    // Linearized: i_d(v) ≈ id0 + gds·Δvd + gm·Δvg + gs·Δvs.
    // Equivalent current source: ieq = id0 - gds·vd - gm·vg - gs·vs.
    let ieq = id0 - gds * vd - gm * vg - gsrc * vs;

    // Current leaves the drain node and enters the source node.
    if let Some(i) = d {
        if let Some(jd) = d {
            lu.stamp(i, jd, gds);
        }
        if let Some(jg) = g {
            lu.stamp(i, jg, gm);
        }
        if let Some(js) = s {
            lu.stamp(i, js, gsrc);
        }
        b[i] -= ieq;
    }
    if let Some(i) = s {
        if let Some(jd) = d {
            lu.stamp(i, jd, -gds);
        }
        if let Some(jg) = g {
            lu.stamp(i, jg, -gm);
        }
        if let Some(js) = s {
            lu.stamp(i, js, -gsrc);
        }
        b[i] += ieq;
    }

    // Convergence aids: gmin from drain and source to ground.
    if let Some(i) = d {
        lu.stamp(i, i, gmin);
    }
    if let Some(i) = s {
        lu.stamp(i, i, gmin);
    }
}

/// Fills `lu` and `b` with the linearized MNA system about the candidate
/// solution `x`. `lu` and `b` must be pre-cleared.
pub(crate) fn stamp_system(
    pattern: &Pattern,
    circuit: &MnaCircuit,
    x: &[f64],
    lu: &mut LuFactor,
    b: &mut [f64],
    spec: &StampSpec<'_>,
) {
    for (plan, elem) in pattern.plans().iter().zip(circuit.elements()) {
        match (plan, elem) {
            (Plan::Conductance { a, b: nb }, MnaElement::Resistor { ohms, .. }) => {
                stamp_conductance(lu, *a, *nb, 1.0 / ohms);
            }
            (Plan::Capacitor { a, b: nb, state }, MnaElement::Capacitor { farads, .. }) => {
                if let Dynamics::Tran {
                    method,
                    dt,
                    state: prev,
                } = &spec.dynamics
                {
                    let (g, ieq) = match method {
                        // Backward Euler companion: i = C/dt (v - v_prev).
                        Method::BackwardEuler => {
                            let g = farads / dt;
                            (g, g * prev.cap_v[*state])
                        }
                        // Trapezoidal companion:
                        // i = 2C/dt (v - v_prev) - i_prev.
                        Method::Trapezoidal => {
                            let g = 2.0 * farads / dt;
                            (g, g * prev.cap_v[*state] + prev.cap_i[*state])
                        }
                    };
                    stamp_conductance(lu, *a, *nb, g);
                    if let Some(i) = a {
                        b[*i] += ieq;
                    }
                    if let Some(i) = nb {
                        b[*i] -= ieq;
                    }
                }
                // DC: open circuit — no stamp.
            }
            (
                Plan::Inductor {
                    a,
                    b: nb,
                    row,
                    state,
                },
                MnaElement::Inductor { henries, .. },
            ) => {
                // Branch current unknown: KCL columns ±1, branch row
                // v_a − v_b − z·i = rhs with z, rhs per method (DC: short).
                if let Some(i) = a {
                    lu.stamp(*i, *row, 1.0);
                    lu.stamp(*row, *i, 1.0);
                }
                if let Some(i) = nb {
                    lu.stamp(*i, *row, -1.0);
                    lu.stamp(*row, *i, -1.0);
                }
                match &spec.dynamics {
                    Dynamics::Dc => {}
                    Dynamics::Tran {
                        method,
                        dt,
                        state: prev,
                    } => match method {
                        // Backward Euler: v = L/dt (i − i_prev).
                        Method::BackwardEuler => {
                            let z = henries / dt;
                            lu.stamp(*row, *row, -z);
                            b[*row] = -z * prev.ind_i[*state];
                        }
                        // Trapezoidal: v + v_prev = 2L/dt (i − i_prev).
                        Method::Trapezoidal => {
                            let z = 2.0 * henries / dt;
                            lu.stamp(*row, *row, -z);
                            b[*row] = -prev.ind_v[*state] - z * prev.ind_i[*state];
                        }
                    },
                }
            }
            (Plan::VSource { p, n, row }, MnaElement::VSource { wave, .. }) => {
                if let Some(i) = p {
                    lu.stamp(*i, *row, 1.0);
                    lu.stamp(*row, *i, 1.0);
                }
                if let Some(i) = n {
                    lu.stamp(*i, *row, -1.0);
                    lu.stamp(*row, *i, -1.0);
                }
                b[*row] = wave.value_at(spec.t) * spec.source_scale;
            }
            (Plan::Fet { d, g, s }, MnaElement::Fet { model, .. }) => {
                stamp_fet(lu, b, x, *d, *g, *s, model.as_ref(), spec.gmin);
            }
            _ => unreachable!("pattern/circuit element mismatch"),
        }
    }
}
