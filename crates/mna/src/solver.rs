//! In-place dense LU factorization with a reusable pivot order.
//!
//! [`LuFactor`] owns every buffer the solve path needs — the stamping
//! target, the factored copy, the permutation and the substitution
//! scratch — so a transient loop performs **zero allocation per solve**.
//! [`LuFactor::factor`] runs full partial pivoting and records the pivot
//! order; [`LuFactor::refactor`] re-eliminates *new numeric values* under
//! the recorded order (the common case when only element values changed
//! between timesteps or sweep corners), falling back to a fresh
//! factorization when a recorded pivot has gone numerically stale.

/// Pivots smaller than this are treated as exact zeros.
const PIVOT_ABS_MIN: f64 = 1e-300;
/// A reused pivot must be at least this fraction of its column maximum,
/// or the stored pivot order is considered stale and rebuilt.
const PIVOT_RTOL: f64 = 1e-3;

/// The matrix was numerically singular.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Singular;

impl std::fmt::Display for Singular {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "singular matrix")
    }
}

impl std::error::Error for Singular {}

/// Counters describing how much factorization work a solver instance did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Full factorizations with fresh partial pivoting.
    pub factorizations: u64,
    /// Re-factorizations that reused the recorded pivot order.
    pub refactorizations: u64,
    /// Refactorization attempts whose recorded pivot order went stale and
    /// fell back to a full factorization (counted in `factorizations` too).
    pub pivot_rebuilds: u64,
    /// Triangular solves.
    pub solves: u64,
}

/// Preallocated dense LU working set: stamp into it, factor (or refactor)
/// in place, then solve as many right-hand sides as needed.
#[derive(Clone, Debug)]
pub struct LuFactor {
    n: usize,
    /// Stamping target (row-major); survives factorization.
    vals: Vec<f64>,
    /// Factored copy of `vals` (L below, U on/above the diagonal, rows
    /// addressed through `perm`).
    lu: Vec<f64>,
    perm: Vec<usize>,
    /// Forward-substitution scratch.
    y: Vec<f64>,
    factored: bool,
    stats: SolveStats,
}

impl LuFactor {
    /// Creates an `n × n` working set with all values zero.
    pub fn new(n: usize) -> LuFactor {
        LuFactor {
            n,
            vals: vec![0.0; n * n],
            lu: vec![0.0; n * n],
            perm: (0..n).collect(),
            y: vec![0.0; n],
            factored: false,
            stats: SolveStats::default(),
        }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Resets all stamped values to zero, keeping allocations and the
    /// recorded pivot order.
    pub fn clear(&mut self) {
        self.vals.fill(0.0);
    }

    /// Adds `v` to value `(r, c)` — the MNA "stamp" operation.
    #[inline]
    pub fn stamp(&mut self, r: usize, c: usize, v: f64) {
        self.vals[r * self.n + c] += v;
    }

    /// Stamped value at `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.vals[r * self.n + c]
    }

    /// Direct access to the row-major stamping target, for bulk fills.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Factorization-work counters.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Eliminates column `col` under the current permutation. Returns the
    /// absolute pivot value.
    fn eliminate(&mut self, col: usize) -> f64 {
        let n = self.n;
        let prow = self.perm[col];
        let pval = self.lu[prow * n + col];
        let (perm, lu) = (&self.perm, &mut self.lu);
        for &row in &perm[col + 1..] {
            let factor = lu[row * n + col] / pval;
            lu[row * n + col] = factor;
            for c in col + 1..n {
                lu[row * n + c] -= factor * lu[prow * n + c];
            }
        }
        pval.abs()
    }

    /// Factors the stamped values with full partial pivoting, recording
    /// the pivot order for later [`LuFactor::refactor`] calls.
    ///
    /// # Errors
    ///
    /// [`Singular`] when no usable pivot exists in some column.
    pub fn factor(&mut self) -> Result<(), Singular> {
        self.stats.factorizations += 1;
        self.factored = false;
        self.lu.copy_from_slice(&self.vals);
        let n = self.n;
        for (i, p) in self.perm.iter_mut().enumerate() {
            *p = i;
        }
        for col in 0..n {
            let mut best = col;
            let mut best_val = self.lu[self.perm[col] * n + col].abs();
            for r in col + 1..n {
                let v = self.lu[self.perm[r] * n + col].abs();
                if v > best_val {
                    best_val = v;
                    best = r;
                }
            }
            if best_val < PIVOT_ABS_MIN {
                return Err(Singular);
            }
            self.perm.swap(col, best);
            self.eliminate(col);
        }
        self.factored = true;
        Ok(())
    }

    /// Re-factors the (re-stamped) values reusing the pivot order recorded
    /// by the last [`LuFactor::factor`] — the cheap path when only numeric
    /// values changed, e.g. between Newton iterations, timesteps, or
    /// same-topology sweep corners.
    ///
    /// Each reused pivot is checked against its column maximum; if it has
    /// gone numerically stale the call transparently falls back to a full
    /// factorization (`pivot_rebuilds` counts these).
    ///
    /// # Errors
    ///
    /// [`Singular`] when the matrix is singular under either path.
    pub fn refactor(&mut self) -> Result<(), Singular> {
        if !self.factored {
            return self.factor();
        }
        self.factored = false;
        self.lu.copy_from_slice(&self.vals);
        let n = self.n;
        for col in 0..n {
            let pval = self.lu[self.perm[col] * n + col].abs();
            let mut col_max = pval;
            for r in col + 1..n {
                col_max = col_max.max(self.lu[self.perm[r] * n + col].abs());
            }
            if pval < PIVOT_ABS_MIN || pval < PIVOT_RTOL * col_max {
                self.stats.pivot_rebuilds += 1;
                return self.factor();
            }
            self.eliminate(col);
        }
        self.stats.refactorizations += 1;
        self.factored = true;
        Ok(())
    }

    /// Solves `A x = b` in place (`b` becomes `x`) against the current
    /// factorization.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful factorization or on a length
    /// mismatch.
    pub fn solve_in_place(&mut self, b: &mut [f64]) {
        assert!(self.factored, "solve_in_place before factor");
        assert_eq!(b.len(), self.n, "dimension mismatch");
        self.stats.solves += 1;
        let n = self.n;
        // Forward substitution (L has implicit unit diagonal).
        for i in 0..n {
            let row = self.perm[i];
            let mut sum = b[row];
            for (j, yj) in self.y.iter().enumerate().take(i) {
                sum -= self.lu[row * n + j] * yj;
            }
            self.y[i] = sum;
        }
        // Back substitution, writing x into b.
        for i in (0..n).rev() {
            let row = self.perm[i];
            let mut sum = self.y[i];
            for (j, xj) in b.iter().enumerate().skip(i + 1) {
                sum -= self.lu[row * n + j] * xj;
            }
            b[i] = sum / self.lu[row * n + i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(m: &mut LuFactor, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        m.solve_in_place(&mut x);
        x
    }

    #[test]
    fn solves_identity() {
        let mut m = LuFactor::new(3);
        for i in 0..3 {
            m.stamp(i, i, 1.0);
        }
        m.factor().unwrap();
        assert_eq!(solve(&mut m, &[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_requiring_pivot() {
        let mut m = LuFactor::new(2);
        m.stamp(0, 1, 1.0);
        m.stamp(1, 0, 1.0);
        m.factor().unwrap();
        let x = solve(&mut m, &[3.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let mut m = LuFactor::new(2);
        m.stamp(0, 0, 1.0);
        m.stamp(0, 1, 2.0);
        m.stamp(1, 0, 2.0);
        m.stamp(1, 1, 4.0);
        assert_eq!(m.factor(), Err(Singular));
        assert_eq!(m.refactor(), Err(Singular));
    }

    #[test]
    fn refactor_reuses_pivot_order() {
        use cnfet_rng::{Rng, SeedableRng};
        let mut rng = cnfet_rng::rngs::StdRng::seed_from_u64(7);
        let n = 12;
        let mut m = LuFactor::new(n);
        for round in 0..5 {
            m.clear();
            for r in 0..n {
                for c in 0..n {
                    m.stamp(r, c, rng.gen_range(-1.0..1.0));
                }
                m.stamp(r, r, 4.0); // diagonally dominant: stable pivots
            }
            let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 2.5).collect();
            let b: Vec<f64> = (0..n)
                .map(|r| (0..n).map(|c| m.at(r, c) * x_true[c]).sum())
                .collect();
            m.refactor().unwrap();
            let x = solve(&mut m, &b);
            for (a, e) in x.iter().zip(&x_true) {
                assert!((a - e).abs() < 1e-9, "round {round}: {a} vs {e}");
            }
        }
        let stats = m.stats();
        // First round had no recorded order; the other four reused it.
        assert_eq!(stats.factorizations, 1);
        assert_eq!(stats.refactorizations, 4);
        assert_eq!(stats.pivot_rebuilds, 0);
        assert_eq!(stats.solves, 5);
    }

    #[test]
    fn stale_pivot_order_falls_back_to_full_factorization() {
        let mut m = LuFactor::new(2);
        m.stamp(0, 0, 1.0);
        m.stamp(1, 1, 1.0);
        m.factor().unwrap(); // records the identity pivot order
        m.clear();
        // New values need the rows swapped: the stored order is stale.
        m.stamp(0, 1, 1.0);
        m.stamp(1, 0, 1.0);
        m.refactor().unwrap();
        let x = solve(&mut m, &[3.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        let stats = m.stats();
        assert_eq!(stats.pivot_rebuilds, 1);
        assert_eq!(stats.factorizations, 2);
        assert_eq!(stats.refactorizations, 0);
    }

    #[test]
    fn clear_keeps_dimension_and_pivots() {
        let mut m = LuFactor::new(2);
        m.stamp(0, 0, 5.0);
        m.clear();
        assert_eq!(m.at(0, 0), 0.0);
        assert_eq!(m.n(), 2);
    }
}
