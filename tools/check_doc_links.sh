#!/usr/bin/env bash
# Doc rot check: every local markdown link target and every backticked
# repo path mentioned in the top-level docs must actually exist. Run
# from anywhere; CI runs it in the docs job so a renamed file with a
# stale doc reference fails the build.
set -euo pipefail
cd "$(dirname "$0")/.."

DOCS=(README.md ARCHITECTURE.md ROADMAP.md)
fail=0

check() {
    local doc="$1" target="$2"
    # Strip a #fragment; a bare fragment link needs no file check.
    local path="${target%%#*}"
    [ -z "$path" ] && return 0
    if [ ! -e "$path" ]; then
        echo "BROKEN: $doc -> $target"
        fail=1
    fi
}

for doc in "${DOCS[@]}"; do
    [ -f "$doc" ] || { echo "BROKEN: missing doc $doc"; fail=1; continue; }

    # Markdown links: [text](target), skipping http(s) and mailto.
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*) ;;
            *) check "$doc" "$target" ;;
        esac
    done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')

    # Backticked repo paths: `src/...`, `crates/...`, `tests/...`,
    # `examples/...`, `tools/...`, `.github/...` with a file extension.
    while IFS= read -r target; do
        check "$doc" "$target"
    done < <(grep -oE '`(src|crates|tests|examples|tools|\.github)/[A-Za-z0-9_./-]+\.[a-z]+`' "$doc" | tr -d '\`')
done

# The fragment anchors README points into ARCHITECTURE.md with must have
# matching headings (GitHub slug: lowercase, spaces->-, strip punct).
while IFS= read -r anchor; do
    slug="$(grep -iE '^#{1,6} ' ARCHITECTURE.md \
        | sed -E 's/^#{1,6} +//' \
        | tr '[:upper:]' '[:lower:]' \
        | sed -E "s/[\`(),:\"'.]//g; s/[^a-z0-9 -]//g; s/ /-/g" \
        | grep -Fx "$anchor" || true)"
    if [ -z "$slug" ]; then
        echo "BROKEN: README.md -> ARCHITECTURE.md#$anchor (no such heading)"
        fail=1
    fi
done < <(grep -oE 'ARCHITECTURE\.md#[a-z0-9-]+' README.md | sed 's/.*#//' | sort -u)

if [ "$fail" -ne 0 ]; then
    echo "doc link check FAILED"
    exit 1
fi
echo "doc link check OK"
