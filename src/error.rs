//! The workspace-wide error hierarchy.
//!
//! Every crate in the workspace keeps its own narrow error enum
//! (`GenerateError`, `SimError`, `GdsError`, …) so library code stays
//! precise, but the public [`Session`](crate::Session) surface speaks one
//! language: [`CnfetError`], with a `From` conversion for each crate-level
//! error and a workspace [`Result`] alias. The conversions play the role
//! `#[derive(thiserror::Error)] #[from]` would — written out by hand, as
//! the workspace builds without external dependencies.

use std::fmt;

/// Workspace result alias.
pub type Result<T> = std::result::Result<T, CnfetError>;

/// Any failure the CNFET stack can produce.
#[derive(Debug)]
#[non_exhaustive]
pub enum CnfetError {
    /// Layout generation failed (`cnfet_core`).
    Generate(crate::core::GenerateError),
    /// A boolean expression could not be parsed (`cnfet_logic`).
    Parse(crate::logic::ParseError),
    /// An expression has no pull-network realization (`cnfet_logic`).
    Network(crate::logic::network::NetworkError),
    /// Circuit simulation failed (`cnfet_spice`).
    Sim(crate::spice::SimError),
    /// A SPICE deck could not be parsed, or a deck-level request (a
    /// [`TranRequest`](crate::TranRequest) analysis spec or probe name)
    /// was invalid (`cnfet_spice`).
    Deck(crate::spice::DeckError),
    /// A GDSII stream could not be read (`cnfet_geom`).
    Gds(crate::geom::GdsError),
    /// A layout-library operation failed (`cnfet_geom`).
    Library(crate::geom::layout::LibraryError),
    /// Structural Verilog could not be parsed (`cnfet_flow`).
    Verilog(crate::flow::VerilogError),
    /// A request referenced a cell the session's library does not hold.
    MissingCell(String),
    /// A request carried a value no execution could give meaning to — a
    /// NaN grid axis, an empty candidate schedule, a zero pass count.
    /// Rejected *before* cache-key rendering so a malformed request can
    /// neither poison a single-flight entry nor occupy a cache slot.
    InvalidRequest {
        /// Dotted path of the offending field (e.g.
        /// `grid.metallic_fractions[1]`).
        field: String,
        /// What the field was expected to hold.
        message: String,
    },
    /// A submitted job was abandoned before it produced a result: its
    /// session shut down with the job still queued, or the request
    /// panicked on a pool worker.
    Canceled,
    /// Filesystem I/O failed (artifact export).
    Io(std::io::Error),
}

impl fmt::Display for CnfetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CnfetError::Generate(e) => write!(f, "layout generation: {e}"),
            CnfetError::Parse(e) => write!(f, "expression parse: {e}"),
            CnfetError::Network(e) => write!(f, "pull network: {e}"),
            CnfetError::Sim(e) => write!(f, "simulation: {e}"),
            CnfetError::Deck(e) => write!(f, "{e}"),
            CnfetError::Gds(e) => write!(f, "gds: {e}"),
            CnfetError::Library(e) => write!(f, "layout library: {e}"),
            CnfetError::Verilog(e) => write!(f, "{e}"),
            CnfetError::MissingCell(name) => {
                write!(f, "cell `{name}` is not in the session's library")
            }
            CnfetError::InvalidRequest { field, message } => {
                write!(f, "invalid request: {field}: {message}")
            }
            CnfetError::Canceled => write!(f, "job canceled before it produced a result"),
            CnfetError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for CnfetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CnfetError::Generate(e) => Some(e),
            CnfetError::Parse(e) => Some(e),
            CnfetError::Network(e) => Some(e),
            CnfetError::Sim(e) => Some(e),
            CnfetError::Deck(e) => Some(e),
            CnfetError::Gds(e) => Some(e),
            CnfetError::Library(e) => Some(e),
            CnfetError::Verilog(e) => Some(e),
            CnfetError::MissingCell(_) => None,
            CnfetError::InvalidRequest { .. } => None,
            CnfetError::Canceled => None,
            CnfetError::Io(e) => Some(e),
        }
    }
}

macro_rules! from_impl {
    ($($variant:ident <- $ty:ty),* $(,)?) => {$(
        impl From<$ty> for CnfetError {
            fn from(e: $ty) -> CnfetError {
                CnfetError::$variant(e)
            }
        }
    )*};
}

from_impl! {
    Generate <- crate::core::GenerateError,
    Parse <- crate::logic::ParseError,
    Network <- crate::logic::network::NetworkError,
    Sim <- crate::spice::SimError,
    Deck <- crate::spice::DeckError,
    Gds <- crate::geom::GdsError,
    Library <- crate::geom::layout::LibraryError,
    Verilog <- crate::flow::VerilogError,
    Io <- std::io::Error,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn conversions_from_every_crate_error() {
        let g: CnfetError = crate::core::GenerateError::NonUniformSeries("x".into()).into();
        assert!(matches!(g, CnfetError::Generate(_)));
        assert!(g.source().is_some());

        let p: CnfetError = crate::logic::Expr::parse("((").unwrap_err().into();
        assert!(matches!(p, CnfetError::Parse(_)));

        let n: CnfetError = crate::logic::network::NetworkError::NotPositive.into();
        assert!(matches!(n, CnfetError::Network(_)));

        let s: CnfetError = crate::spice::SimError::Singular.into();
        assert!(matches!(s, CnfetError::Sim(_)));

        let k: CnfetError = crate::spice::Circuit::from_spice("Q1 a b c 1")
            .unwrap_err()
            .into();
        assert!(matches!(k, CnfetError::Deck(_)));
        assert!(k.to_string().contains("deck line 1"));

        let d: CnfetError = crate::geom::GdsError::Truncated.into();
        assert!(matches!(d, CnfetError::Gds(_)));

        let l: CnfetError = crate::geom::layout::LibraryError::MissingCell("INV".into()).into();
        assert!(matches!(l, CnfetError::Library(_)));

        let v: CnfetError = crate::flow::parse_verilog("garbage").unwrap_err().into();
        assert!(matches!(v, CnfetError::Verilog(_)));

        let i: CnfetError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(i, CnfetError::Io(_)));
    }

    #[test]
    fn display_includes_inner_message() {
        let e: CnfetError = crate::spice::SimError::Singular.into();
        assert!(e.to_string().contains("singular"));
    }

    #[test]
    fn invalid_request_names_the_field() {
        let e = CnfetError::InvalidRequest {
            field: "grid.metallic_fractions[1]".into(),
            message: "expected a finite non-negative number, got NaN".into(),
        };
        assert!(e.to_string().contains("grid.metallic_fractions[1]"));
        assert!(e.source().is_none());
    }
}
