//! The sharded, bounded, single-flight memoization cache behind
//! [`Session`](crate::Session).
//!
//! The PR-1 cache was one `Mutex<HashMap>` with a global `Condvar`: every
//! hit took the same lock, and every single-flight wakeup broadcast to
//! every waiter in the whole session. This module replaces it with a
//! lock-striped design:
//!
//! * **Sharding** — keys are distributed over `N` independent shards by
//!   hash, so concurrent hits on different keys take different locks and
//!   the hot hit path scales with threads instead of serializing.
//! * **Per-shard single-flight** — when several threads miss on the same
//!   key at once, exactly one runs the builder; the rest wait on *their
//!   shard's* condvar and receive the finished value as a hit. A failed
//!   build releases the key so the next waiter retries. Waiters on other
//!   shards are never woken.
//! * **Bounded capacity with LRU eviction** — each shard holds at most
//!   `ceil(capacity / shards)` entries; inserting past the bound evicts
//!   the least-recently-used entry of that shard. `capacity == 0`
//!   disables caching entirely (every request builds, nothing is stored).
//! * **Per-shard stats** — hits, misses, evictions and in-flight waits
//!   are counted per shard and aggregated in [`CacheStats`]. Counter
//!   updates happen **while the shard lock is held** and snapshots read
//!   them under the same lock, so a `stats()` call
//!   racing concurrent traffic (the `GET /v1/stats` endpoint of
//!   `cnfet-serve` polls exactly this) always observes a per-shard-
//!   coherent view: every resident entry is accounted by a counted miss
//!   (`misses >= entries + evictions`), and a reported hit's value was
//!   resident when counted. Cross-shard skew remains possible — the
//!   snapshot locks shards one at a time — but each shard's line adds
//!   up.
//! * **A seqlock fast read path** — a clean hit takes **zero mutex
//!   acquisitions**. Each shard guards its bucket table with a version
//!   counter (odd while a writer is restructuring) plus a reader-presence
//!   count: a fast reader announces itself, re-checks the version is
//!   even, probes the table, clones the value, and withdraws; a writer
//!   (always under the shard mutex, so writers are serialized) bumps the
//!   version to odd, waits for announced readers to drain, mutates, and
//!   bumps back to even. Readers that observe an odd version — or miss —
//!   fall back to the locked path, which preserves every slow-path
//!   property above (single-flight, LRU bounds, counter coherence). Fast
//!   hits are counted in their own per-shard `fast_hits` counter and
//!   refresh LRU recency through the entry's atomic tick, so an entry
//!   kept hot by fast readers is still protected from eviction.

use std::cell::UnsafeCell;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Default total entry bound of a session cache.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Default shard count of a session cache (rounded up to a power of two).
pub const DEFAULT_SHARDS: usize = 16;

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// A point-in-time snapshot of one shard's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Entries currently resident in the shard.
    pub entries: usize,
    /// Requests answered from this shard (including single-flight waits
    /// that received a concurrent build's value, and including the
    /// lock-free fast hits counted in `fast_hits`).
    pub hits: u64,
    /// The subset of `hits` served by the seqlock fast path with zero
    /// mutex acquisitions.
    pub fast_hits: u64,
    /// Requests that ran the builder on this shard.
    pub misses: u64,
    /// Entries evicted from this shard to respect the capacity bound.
    pub evictions: u64,
    /// Times a request blocked on this shard waiting for an in-flight
    /// build of its key.
    pub inflight_waits: u64,
    /// Builds currently in flight on this shard (claimed by a builder
    /// thread but not yet inserted or abandoned).
    pub in_flight: usize,
}

/// A point-in-time snapshot of a whole cache: aggregate counters plus the
/// per-shard breakdown.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total entry bound across all shards (`0` = caching disabled).
    pub capacity: usize,
    /// Entry bound of each shard.
    pub shard_capacity: usize,
    /// Entries currently resident across all shards.
    pub entries: usize,
    /// Aggregate hits.
    pub hits: u64,
    /// Aggregate lock-free fast hits (a subset of `hits`).
    pub fast_hits: u64,
    /// Aggregate misses.
    pub misses: u64,
    /// Aggregate evictions.
    pub evictions: u64,
    /// Aggregate in-flight waits.
    pub inflight_waits: u64,
    /// Aggregate builds currently in flight.
    pub in_flight: usize,
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
}

// ---------------------------------------------------------------------------
// Shards
// ---------------------------------------------------------------------------

struct Stored<V> {
    value: V,
    /// Monotone per-shard use tick; smallest tick = least recently used.
    /// Atomic so the lock-free fast path can refresh recency on a hit —
    /// an entry kept hot by fast readers is still protected from LRU
    /// eviction, exactly as on the locked path.
    last_used: AtomicU64,
}

/// The bucket table type of one shard: indexed by the key's full 64-bit
/// hash (computed once per request, also used for shard selection) with a
/// tiny collision vector per slot, so the hot hit path hashes the —
/// potentially large — key exactly once and then does one `u64` map probe
/// plus one key compare.
type Buckets<K, V> = HashMap<u64, Vec<(K, Stored<V>)>>;

/// The mutex-guarded remainder of a shard (the bucket table itself lives
/// outside the mutex, in [`Shard::buckets`], so the seqlock fast path can
/// read it without locking).
#[derive(Debug)]
struct ShardState {
    /// Total entries across all buckets.
    len: usize,
    /// Hashes with a build in flight. Keyed by hash, not key: a 64-bit
    /// collision merely serializes two unrelated builds, it never
    /// produces a wrong value (waiters re-check their own key on wake).
    in_flight: HashSet<u64>,
}

struct Shard<K, V> {
    /// The bucket table. Written only inside [`Shard::mutate_buckets`]
    /// (shard mutex held + seqlock write section); read either under the
    /// shard mutex or from an announced fast-read section — see the
    /// safety contract on [`Shard::read_buckets`].
    buckets: UnsafeCell<Buckets<K, V>>,
    /// Seqlock version of `buckets`: odd while a writer is inside the
    /// write section.
    seq: AtomicU64,
    /// Fast readers currently announced into the read section. A writer
    /// drains this to zero before mutating, which is what makes handing
    /// `&V` references out of the table sound (no classic-seqlock torn
    /// reads, and no use-after-free cloning a value mid-eviction).
    readers: AtomicU64,
    /// Monotone use tick, shared by both hit paths.
    tick: AtomicU64,
    state: Mutex<ShardState>,
    ready: Condvar,
    hits: AtomicU64,
    fast_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inflight_waits: AtomicU64,
}

// SAFETY: the `buckets` UnsafeCell is written only inside
// `mutate_buckets`, whose callers hold the shard mutex (serializing
// writers) and which excludes announced fast readers via the
// `seq`/`readers` handshake before touching the table; it is read only
// under that same mutex or from inside an announced fast-read section.
// `&Shard` therefore never yields unsynchronized aliased access to the
// table. `K: Send + Sync` / `V: Send + Sync` keep the `&K`/`&V`
// references the read paths hand out (and the clones they produce)
// sound across threads.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for Shard<K, V> {}

impl<K, V> std::fmt::Debug for Shard<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("seq", &self.seq)
            .field("readers", &self.readers)
            .finish_non_exhaustive()
    }
}

impl<K, V> Shard<K, V> {
    fn new() -> Shard<K, V> {
        Shard {
            buckets: UnsafeCell::new(HashMap::new()),
            seq: AtomicU64::new(0),
            readers: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            state: Mutex::new(ShardState {
                len: 0,
                in_flight: HashSet::new(),
            }),
            ready: Condvar::new(),
            hits: AtomicU64::new(0),
            fast_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inflight_waits: AtomicU64::new(0),
        }
    }

    /// A shared view of the bucket table.
    ///
    /// # Safety
    ///
    /// The caller must either hold the shard mutex (which excludes the
    /// write section, because every `mutate_buckets` caller holds it
    /// too) or be inside an announced fast-read section (`readers`
    /// incremented *before* observing `seq` even).
    unsafe fn read_buckets(&self) -> &Buckets<K, V> {
        // SAFETY: forwarded to the caller (see above).
        unsafe { &*self.buckets.get() }
    }

    /// Runs `f` with exclusive access to the bucket table. The caller
    /// must hold the shard mutex — that is what serializes writers; this
    /// method's version/reader handshake then excludes the lock-free
    /// fast readers: the version goes odd (new fast readers bounce to
    /// the locked path), announced readers drain, `f` mutates, and the
    /// version returns to even.
    fn mutate_buckets<R>(&self, f: impl FnOnce(&mut Buckets<K, V>) -> R) -> R {
        self.seq.fetch_add(1, Ordering::SeqCst);
        let mut spins = 0u32;
        while self.readers.load(Ordering::SeqCst) != 0 {
            // Fast readers never block while announced, so the drain is
            // short — but on a single CPU an announced reader may need
            // the core this writer is spinning on, so yield periodically.
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // SAFETY: writers are serialized by the shard mutex held by the
        // caller, the odd version keeps new fast readers out, and the
        // announced readers have drained — this closure has exclusive
        // access to the table.
        let result = f(unsafe { &mut *self.buckets.get() });
        self.seq.fetch_add(1, Ordering::SeqCst);
        result
    }

    /// The lock-free fast hit path: zero mutex acquisitions on a clean
    /// hit. Returns `None` (fall back to the locked path) on a miss or
    /// whenever a writer is inside — or enters — the write section.
    fn fast_hit(&self, hash: u64, key: &K) -> Option<V>
    where
        K: Eq,
        V: Clone,
    {
        if self.seq.load(Ordering::SeqCst) & 1 != 0 {
            // A writer is restructuring the table; don't even announce.
            return None;
        }
        self.readers.fetch_add(1, Ordering::SeqCst);
        // Re-check *after* announcing. SeqCst gives the Dekker-style
        // guarantee with the writer's store(seq: odd) → load(readers)
        // sequence: either this load sees the odd version (and the
        // reader backs out without touching the table), or the writer's
        // readers-drain loop sees this reader's announcement (and waits
        // for it to withdraw before mutating). Both orders are safe;
        // overlap is impossible.
        let value = if self.seq.load(Ordering::SeqCst) & 1 == 0 {
            // SAFETY: announced while the version was even — see above.
            let buckets = unsafe { self.read_buckets() };
            buckets
                .get(&hash)
                .and_then(|bucket| bucket.iter().find(|(k, _)| k == key))
                .map(|(_, stored)| {
                    let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
                    stored.last_used.store(tick, Ordering::Relaxed);
                    stored.value.clone()
                })
        } else {
            None
        };
        self.readers.fetch_sub(1, Ordering::SeqCst);
        if value.is_some() {
            // Fast hits count as hits (the aggregate hit/miss accounting
            // is path-independent) and additionally as fast hits.
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.fast_hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }
}

/// A claimed single-flight build: releases the hash from the shard's
/// `in_flight` set and wakes the shard's waiters when dropped. Running
/// the release on `Drop` makes the claim panic-safe — a builder that
/// unwinds (and is caught upstream, e.g. by a pool worker) can never
/// leave its key permanently claimed with waiters parked forever.
struct InFlightClaim<'a, K, V> {
    shard: &'a Shard<K, V>,
    hash: u64,
}

impl<K, V> Drop for InFlightClaim<'_, K, V> {
    fn drop(&mut self) {
        // Tolerate a poisoned lock: this drop may run during a panic
        // unwind, where a second panic would abort the process.
        let mut state = match self.shard.state.lock() {
            Ok(state) => state,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.in_flight.remove(&self.hash);
        drop(state);
        self.shard.ready.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

/// A lock-striped memoizing map with per-shard single-flight builds and
/// LRU-bounded capacity. See the [module docs](self) for the design.
#[derive(Debug)]
pub(crate) struct ShardedCache<K, V> {
    shards: Vec<Shard<K, V>>,
    /// Per-shard entry bound; `0` disables caching.
    shard_capacity: usize,
    /// Total bound as configured (kept for stats; the enforced bound is
    /// `shard_capacity` per shard).
    capacity: usize,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: usize,
}

impl<K: Clone + Eq + Hash, V: Clone> ShardedCache<K, V> {
    /// A cache bounded to `capacity` entries striped over `shards` locks.
    /// The shard count is clamped to `[1, 256]` and rounded up to a power
    /// of two; `capacity == 0` disables caching.
    pub(crate) fn new(capacity: usize, shards: usize) -> ShardedCache<K, V> {
        let shards = shards.clamp(1, 256).next_power_of_two();
        // Never stripe wider than the capacity: one entry per shard is
        // the useful minimum, and fewer shards keep LRU order exact for
        // small caches.
        let shards = if capacity == 0 {
            1
        } else {
            shards.min(capacity.next_power_of_two())
        };
        let shard_capacity = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards)
        };
        ShardedCache {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            shard_capacity,
            capacity,
            mask: shards - 1,
        }
    }

    /// Hashes the key once; the result selects the shard and indexes the
    /// shard's buckets.
    fn hash_of(key: &K) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        h.finish()
    }

    /// Returns `(value, was_cached)`; `was_cached` is true whenever the
    /// value came from another build (earlier or concurrent), so a miss
    /// is reported exactly once per cached entry. With caching disabled
    /// (`capacity == 0`) every call builds and `was_cached` is false.
    ///
    /// The builder runs outside the shard lock, single-flight per key:
    /// misses on different keys build in parallel while duplicates wait
    /// on their shard's condvar instead of regenerating. A failed — or
    /// panicking — build releases the key so the next waiter retries; an
    /// error is propagated to the caller that ran the builder, a panic
    /// unwinds through it (the claim is released by a drop guard, so a
    /// panic-catching caller such as a pool worker never leaves the key
    /// permanently claimed).
    pub(crate) fn get_or_build<E>(
        &self,
        key: &K,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<(V, bool), E> {
        let hash = Self::hash_of(key);
        let shard = &self.shards[(hash as usize) & self.mask];
        if self.shard_capacity == 0 {
            let value = build()?;
            shard.misses.fetch_add(1, Ordering::Relaxed);
            return Ok((value, false));
        }

        // The seqlock fast path: a clean hit clones the value without
        // touching the shard mutex. Contention with a writer — or a
        // plain miss — falls through to the locked path below.
        if let Some(value) = shard.fast_hit(hash, key) {
            return Ok((value, true));
        }

        let mut state = shard.state.lock().expect("cache shard lock");
        loop {
            {
                // SAFETY: the shard mutex is held — every bucket writer
                // holds it too, so no write section can be active. (The
                // reference must not outlive this block: `wait` below
                // releases the mutex.)
                let buckets = unsafe { shard.read_buckets() };
                if let Some(bucket) = buckets.get(&hash) {
                    if let Some((_, stored)) = bucket.iter().find(|(k, _)| k == key) {
                        let tick = shard.tick.fetch_add(1, Ordering::Relaxed) + 1;
                        stored.last_used.store(tick, Ordering::Relaxed);
                        let value = stored.value.clone();
                        // Counted before the lock drops: a stats snapshot
                        // can never see this hit without the entry it
                        // came from.
                        shard.hits.fetch_add(1, Ordering::Relaxed);
                        drop(state);
                        return Ok((value, true));
                    }
                }
            }
            if !state.in_flight.contains(&hash) {
                break;
            }
            shard.inflight_waits.fetch_add(1, Ordering::Relaxed);
            state = shard.ready.wait(state).expect("cache shard lock");
        }
        state.in_flight.insert(hash);
        drop(state);
        // From here the claim is owned by the guard: however the build
        // ends — value, error, or panic — the hash is released and the
        // shard's waiters are woken, exactly once.
        let claim = InFlightClaim { shard, hash };

        let built = build();

        let mut state = shard.state.lock().expect("cache shard lock");
        let result = match built {
            Ok(value) => {
                let tick = shard.tick.fetch_add(1, Ordering::Relaxed) + 1;
                shard.mutate_buckets(|buckets| {
                    // The key cannot already be resident: its hash was
                    // held in `in_flight`, so every same-hash requester
                    // waited and re-checked above.
                    buckets.entry(hash).or_default().push((
                        key.clone(),
                        Stored {
                            value: value.clone(),
                            last_used: AtomicU64::new(tick),
                        },
                    ));
                    state.len += 1;
                    // Counted while the lock is held (insert and miss are
                    // one atomic step to mutex-taking observers): a stats
                    // snapshot can never see the entry without its miss,
                    // or the miss without its entry —
                    // `misses >= entries + evictions` holds at every
                    // instant.
                    shard.misses.fetch_add(1, Ordering::Relaxed);
                    while state.len > self.shard_capacity {
                        if !Self::evict_lru(buckets) {
                            break;
                        }
                        state.len -= 1;
                        shard.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                });
                Ok((value, false))
            }
            // Waiters re-check and the next one retries the build.
            Err(e) => Err(e),
        };
        drop(state);
        drop(claim);
        result
    }

    /// Removes the least-recently-used entry from the bucket table
    /// (linear scan; runs only on over-capacity inserts, never on hits).
    /// Must run inside a [`Shard::mutate_buckets`] write section; the
    /// caller adjusts `len` and the eviction counter on `true`.
    fn evict_lru(buckets: &mut Buckets<K, V>) -> bool {
        let Some((&lru_hash, lru_pos)) = buckets
            .iter()
            .flat_map(|(h, bucket)| {
                bucket
                    .iter()
                    .enumerate()
                    .map(move |(i, (_, s))| ((h, i), s.last_used.load(Ordering::Relaxed)))
            })
            .min_by_key(|(_, used)| *used)
            .map(|(at, _)| at)
        else {
            return false;
        };
        let bucket = buckets.get_mut(&lru_hash).expect("bucket exists");
        bucket.swap_remove(lru_pos);
        if bucket.is_empty() {
            buckets.remove(&lru_hash);
        }
        true
    }

    /// Clones every resident `(key, value)` pair, shard by shard — the
    /// export half of cache snapshotting ([`crate::snapshot`]). Each
    /// shard is locked once; builds in flight when their shard is
    /// visited are simply not included. Order is shard-major and
    /// arbitrary within a shard.
    pub(crate) fn export(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let state = shard.state.lock().expect("cache shard lock");
            // SAFETY: the shard mutex is held, so no write section is
            // active.
            let buckets = unsafe { shard.read_buckets() };
            for bucket in buckets.values() {
                for (key, stored) in bucket {
                    out.push((key.clone(), stored.value.clone()));
                }
            }
            drop(state);
        }
        out
    }

    /// Inserts one entry directly, bypassing the builder — the import
    /// half of cache snapshotting (warm boot). The insert is counted as
    /// a miss, preserving the per-shard invariant
    /// `misses >= entries + evictions` (the miss was paid by whoever
    /// built the snapshotted value, in a previous process). A key that
    /// is already resident is left untouched (no hit or miss counted),
    /// capacity is enforced with the usual LRU eviction, and a disabled
    /// cache (`capacity == 0`) ignores the seed entirely.
    pub(crate) fn seed(&self, key: K, value: V) {
        if self.shard_capacity == 0 {
            return;
        }
        let hash = Self::hash_of(&key);
        let shard = &self.shards[(hash as usize) & self.mask];
        let mut state = shard.state.lock().expect("cache shard lock");
        {
            // SAFETY: the shard mutex is held, so no write section is
            // active.
            let buckets = unsafe { shard.read_buckets() };
            if let Some(bucket) = buckets.get(&hash) {
                if bucket.iter().any(|(k, _)| k == &key) {
                    return;
                }
            }
        }
        let tick = shard.tick.fetch_add(1, Ordering::Relaxed) + 1;
        shard.mutate_buckets(|buckets| {
            buckets.entry(hash).or_default().push((
                key,
                Stored {
                    value,
                    last_used: AtomicU64::new(tick),
                },
            ));
            state.len += 1;
            shard.misses.fetch_add(1, Ordering::Relaxed);
            while state.len > self.shard_capacity {
                if !Self::evict_lru(buckets) {
                    break;
                }
                state.len -= 1;
                shard.evictions.fetch_add(1, Ordering::Relaxed);
            }
        });
    }

    /// Entries currently resident across all shards.
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.state.lock().expect("cache shard lock").len)
            .sum()
    }

    /// Drops every resident entry; counters are kept, and so are the
    /// in-flight claims: a build racing with the clear completes, inserts
    /// its (post-clear) value, and releases its claim normally, so
    /// waiters are never stranded and `in_flight` accounting returns to
    /// zero on its own.
    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            let mut state = shard.state.lock().expect("cache shard lock");
            shard.mutate_buckets(|buckets| buckets.clear());
            state.len = 0;
        }
    }

    /// A snapshot of the aggregate and per-shard counters.
    pub(crate) fn stats(&self) -> CacheStats {
        let mut out = CacheStats {
            capacity: self.capacity,
            shard_capacity: self.shard_capacity,
            shards: Vec::with_capacity(self.shards.len()),
            ..CacheStats::default()
        };
        for shard in &self.shards {
            // Counters are read while the shard lock is held, pairing
            // with the under-lock increments in `get_or_build`: each
            // shard's snapshot is internally coherent (see module docs).
            let s = {
                let state = shard.state.lock().expect("cache shard lock");
                ShardStats {
                    entries: state.len,
                    hits: shard.hits.load(Ordering::Relaxed),
                    fast_hits: shard.fast_hits.load(Ordering::Relaxed),
                    misses: shard.misses.load(Ordering::Relaxed),
                    evictions: shard.evictions.load(Ordering::Relaxed),
                    inflight_waits: shard.inflight_waits.load(Ordering::Relaxed),
                    in_flight: state.in_flight.len(),
                }
            };
            out.entries += s.entries;
            out.hits += s.hits;
            out.fast_hits += s.fast_hits;
            out.misses += s.misses;
            out.evictions += s.evictions;
            out.inflight_waits += s.inflight_waits;
            out.in_flight += s.in_flight;
            out.shards.push(s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    fn ok(v: u32) -> impl FnOnce() -> Result<u32, Infallible> {
        move || Ok(v)
    }

    #[test]
    fn hits_after_first_build() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(64, 4);
        assert_eq!(cache.get_or_build(&1, ok(10)).unwrap(), (10, false));
        assert_eq!(cache.get_or_build(&1, ok(99)).unwrap(), (10, true));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(2, 1);
        cache.get_or_build(&1, ok(1)).unwrap();
        cache.get_or_build(&2, ok(2)).unwrap();
        // Touch 1 so 2 becomes the LRU entry, then insert 3.
        assert!(cache.get_or_build(&1, ok(0)).unwrap().1);
        cache.get_or_build(&3, ok(3)).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get_or_build(&1, ok(0)).unwrap().1, "1 survives");
        assert!(!cache.get_or_build(&2, ok(2)).unwrap().1, "2 was evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(0, 8);
        assert_eq!(cache.get_or_build(&1, ok(10)).unwrap(), (10, false));
        assert_eq!(cache.get_or_build(&1, ok(11)).unwrap(), (11, false));
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn shard_count_is_clamped_to_capacity() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(2, 64);
        assert_eq!(cache.stats().shards.len(), 2);
        let unbounded: ShardedCache<u32, u32> = ShardedCache::new(4096, 6);
        assert_eq!(unbounded.stats().shards.len(), 8, "rounded to power of two");
    }

    #[test]
    fn failed_build_releases_the_key() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(16, 1);
        assert!(cache.get_or_build(&7, || Err::<u32, &str>("boom")).is_err());
        assert_eq!(cache.get_or_build(&7, ok(42)).unwrap(), (42, false));
    }

    #[test]
    fn panicking_build_releases_the_key() {
        // A pool worker catches request panics, so a panicking builder
        // must not leave its in-flight claim behind — later requests for
        // the same key would otherwise wait forever.
        let cache: ShardedCache<u32, u32> = ShardedCache::new(16, 1);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_build(&7, || -> Result<u32, &str> { panic!("builder blew up") })
        }));
        assert!(unwound.is_err(), "panic propagates to the builder's caller");
        assert_eq!(cache.stats().in_flight, 0, "claim released by the guard");
        assert_eq!(cache.get_or_build(&7, ok(42)).unwrap(), (42, false));
    }

    #[test]
    fn clear_during_inflight_build_keeps_accounting_consistent() {
        use std::sync::atomic::AtomicBool;
        let cache: ShardedCache<u32, u32> = ShardedCache::new(16, 1);
        let release = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                cache
                    .get_or_build(&1, || {
                        while !release.load(Ordering::Acquire) {
                            std::thread::yield_now();
                        }
                        Ok::<_, Infallible>(7)
                    })
                    .unwrap();
            });
            // Wait until the builder has claimed the key, then clear.
            while cache.stats().in_flight == 0 {
                std::thread::yield_now();
            }
            cache.clear();
            assert_eq!(
                cache.stats().in_flight,
                1,
                "clearing must not revoke an in-flight claim"
            );
            release.store(true, Ordering::Release);
        });
        let stats = cache.stats();
        assert_eq!(stats.in_flight, 0, "claim released after the build");
        assert_eq!(stats.entries, 1, "the racing build landed post-clear");
        assert_eq!(cache.get_or_build(&1, ok(9)).unwrap(), (7, true));
    }

    #[test]
    fn stats_snapshots_stay_coherent_under_concurrent_traffic() {
        // Regression test for the counter ordering: inserts count their
        // miss and hits count themselves *under the shard lock*, so a
        // concurrent stats() poll (the serve stats endpoint) must always
        // observe `misses >= entries + evictions` and `hits + misses`
        // never exceeding the operations issued so far, per shard.
        let cache: ShardedCache<u32, u32> = ShardedCache::new(8, 4);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let writers: Vec<_> = (0..2u32)
                .map(|t| {
                    let cache = &cache;
                    scope.spawn(move || {
                        for i in 0..4000u32 {
                            let key = (i % 23) * 2 + t;
                            cache.get_or_build(&key, ok(key)).unwrap();
                        }
                    })
                })
                .collect();
            let poller = scope.spawn(|| {
                let mut polls = 0u64;
                while !stop.load(Ordering::Acquire) {
                    for s in cache.stats().shards {
                        assert!(
                            s.misses >= (s.entries as u64 + s.evictions),
                            "incoherent shard snapshot: {s:?}"
                        );
                    }
                    polls += 1;
                }
                polls
            });
            for writer in writers {
                writer.join().unwrap();
            }
            stop.store(true, Ordering::Release);
            assert!(poller.join().unwrap() > 0, "the poller actually raced");
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8000);
    }

    #[test]
    fn fast_path_serves_clean_hits_and_counts_them() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(64, 4);
        assert_eq!(cache.get_or_build(&1, ok(10)).unwrap(), (10, false));
        // With no writer active, every subsequent hit is a fast hit.
        for _ in 0..3 {
            assert_eq!(cache.get_or_build(&1, ok(99)).unwrap(), (10, true));
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3, "fast hits are included in hits");
        assert_eq!(stats.fast_hits, 3, "...and counted separately");
    }

    #[test]
    fn fast_hits_refresh_lru_recency() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(2, 1);
        cache.get_or_build(&1, ok(1)).unwrap();
        cache.get_or_build(&2, ok(2)).unwrap();
        // This touch goes through the lock-free fast path…
        assert!(cache.get_or_build(&1, ok(0)).unwrap().1);
        assert_eq!(cache.stats().fast_hits, 1);
        // …and must still protect 1 from the eviction triggered by 3.
        cache.get_or_build(&3, ok(3)).unwrap();
        assert!(cache.get_or_build(&1, ok(0)).unwrap().1, "1 survives");
        assert!(!cache.get_or_build(&2, ok(2)).unwrap().1, "2 was evicted");
    }

    #[test]
    fn seqlock_read_path_survives_concurrent_eviction_churn() {
        // Readers hammer one hot key through the fast path while a
        // writer churns enough distinct keys through a tiny shard to
        // force constant evictions (every insert enters the seqlock
        // write section and restructures the table the readers probe).
        // Values are self-checksummed so any torn read — a clone
        // overlapping a table mutation — breaks the relation.
        const MASK: u64 = 0x9e37_79b9_7f4a_7c15;
        let make = |k: u32| {
            let seed = u64::from(k) + 1;
            move || Ok::<_, Infallible>(vec![seed, seed.wrapping_mul(3), seed ^ MASK])
        };
        let check = |v: &Vec<u64>| {
            assert_eq!(v[1], v[0].wrapping_mul(3), "torn read: {v:?}");
            assert_eq!(v[2], v[0] ^ MASK, "torn read: {v:?}");
        };
        let cache: ShardedCache<u32, Vec<u64>> = ShardedCache::new(4, 1);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        let (v, _) = cache.get_or_build(&1, make(1)).unwrap();
                        check(&v);
                    }
                });
            }
            scope.spawn(|| {
                for i in 0..10_000u32 {
                    let k = 2 + (i % 7);
                    let (v, _) = cache.get_or_build(&k, make(k)).unwrap();
                    check(&v);
                }
            });
        });
        // One guaranteed clean hit so `fast_hits > 0` holds even if the
        // scheduler serialized the whole race above.
        cache.get_or_build(&1, make(1)).unwrap();
        let (v, _) = cache.get_or_build(&1, make(1)).unwrap();
        check(&v);
        let stats = cache.stats();
        assert!(stats.fast_hits > 0, "fast path never engaged: {stats:?}");
        assert!(
            stats.fast_hits <= stats.hits,
            "fast hits are a subset of hits: {stats:?}"
        );
        // 40k threaded probes + 2 tail probes, each a hit or a miss.
        assert_eq!(stats.hits + stats.misses, 40_002);
        for s in stats.shards {
            assert!(
                s.misses >= s.entries as u64 + s.evictions,
                "incoherent shard accounting: {s:?}"
            );
        }
    }

    #[test]
    fn export_and_seed_round_trip() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(16, 4);
        cache.get_or_build(&1, ok(10)).unwrap();
        cache.get_or_build(&2, ok(20)).unwrap();
        let mut entries = cache.export();
        entries.sort_unstable();
        assert_eq!(entries, vec![(1, 10), (2, 20)]);

        let warm: ShardedCache<u32, u32> = ShardedCache::new(16, 4);
        for (k, v) in entries {
            warm.seed(k, v);
        }
        // Seeded entries are pure hits, and the invariant held at boot.
        assert_eq!(warm.get_or_build(&1, ok(99)).unwrap(), (10, true));
        assert_eq!(warm.get_or_build(&2, ok(99)).unwrap(), (20, true));
        let stats = warm.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.misses, 2, "each seed counts as a paid miss");
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn seed_respects_capacity_residency_and_disablement() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(2, 1);
        cache.seed(1, 1);
        cache.seed(1, 42);
        assert_eq!(cache.get_or_build(&1, ok(0)).unwrap(), (1, true));
        cache.seed(2, 2);
        cache.seed(3, 3);
        assert_eq!(cache.len(), 2, "seeding past capacity evicts LRU");
        assert_eq!(cache.stats().evictions, 1);

        let off: ShardedCache<u32, u32> = ShardedCache::new(0, 1);
        off.seed(1, 1);
        assert_eq!(off.len(), 0);
        assert_eq!(off.stats().misses, 0, "disabled cache ignores seeds");
    }

    #[test]
    fn concurrent_misses_single_flight() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(16, 4);
        let builds = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let (v, _) = cache
                        .get_or_build(&5, || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            // Widen the race window so waiters actually pile up.
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            Ok::<_, Infallible>(55)
                        })
                        .unwrap();
                    assert_eq!(v, 55);
                });
            }
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1, "exactly one build");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }
}
