//! The sharded, bounded, single-flight memoization cache behind
//! [`Session`](crate::Session).
//!
//! The PR-1 cache was one `Mutex<HashMap>` with a global `Condvar`: every
//! hit took the same lock, and every single-flight wakeup broadcast to
//! every waiter in the whole session. This module replaces it with a
//! lock-striped design:
//!
//! * **Sharding** — keys are distributed over `N` independent shards by
//!   hash, so concurrent hits on different keys take different locks and
//!   the hot hit path scales with threads instead of serializing.
//! * **Per-shard single-flight** — when several threads miss on the same
//!   key at once, exactly one runs the builder; the rest wait on *their
//!   shard's* condvar and receive the finished value as a hit. A failed
//!   build releases the key so the next waiter retries. Waiters on other
//!   shards are never woken.
//! * **Bounded capacity with LRU eviction** — each shard holds at most
//!   `ceil(capacity / shards)` entries; inserting past the bound evicts
//!   the least-recently-used entry of that shard. `capacity == 0`
//!   disables caching entirely (every request builds, nothing is stored).
//! * **Per-shard stats** — hits, misses, evictions and in-flight waits
//!   are counted per shard and aggregated in [`CacheStats`]. Counter
//!   updates happen **while the shard lock is held** and snapshots read
//!   them under the same lock, so a `stats()` call
//!   racing concurrent traffic (the `GET /v1/stats` endpoint of
//!   `cnfet-serve` polls exactly this) always observes a per-shard-
//!   coherent view: every resident entry is accounted by a counted miss
//!   (`misses >= entries + evictions`), and a reported hit's value was
//!   resident when counted. Cross-shard skew remains possible — the
//!   snapshot locks shards one at a time — but each shard's line adds
//!   up.

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Default total entry bound of a session cache.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Default shard count of a session cache (rounded up to a power of two).
pub const DEFAULT_SHARDS: usize = 16;

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// A point-in-time snapshot of one shard's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Entries currently resident in the shard.
    pub entries: usize,
    /// Requests answered from this shard (including single-flight waits
    /// that received a concurrent build's value).
    pub hits: u64,
    /// Requests that ran the builder on this shard.
    pub misses: u64,
    /// Entries evicted from this shard to respect the capacity bound.
    pub evictions: u64,
    /// Times a request blocked on this shard waiting for an in-flight
    /// build of its key.
    pub inflight_waits: u64,
    /// Builds currently in flight on this shard (claimed by a builder
    /// thread but not yet inserted or abandoned).
    pub in_flight: usize,
}

/// A point-in-time snapshot of a whole cache: aggregate counters plus the
/// per-shard breakdown.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total entry bound across all shards (`0` = caching disabled).
    pub capacity: usize,
    /// Entry bound of each shard.
    pub shard_capacity: usize,
    /// Entries currently resident across all shards.
    pub entries: usize,
    /// Aggregate hits.
    pub hits: u64,
    /// Aggregate misses.
    pub misses: u64,
    /// Aggregate evictions.
    pub evictions: u64,
    /// Aggregate in-flight waits.
    pub inflight_waits: u64,
    /// Aggregate builds currently in flight.
    pub in_flight: usize,
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
}

// ---------------------------------------------------------------------------
// Shards
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Entry<V> {
    value: V,
    /// Monotone per-shard use tick; smallest tick = least recently used.
    last_used: u64,
}

/// Shard storage is indexed by the key's full 64-bit hash (computed once
/// per request, also used for shard selection) with a tiny collision
/// vector per slot, so the hot hit path hashes the — potentially large —
/// key exactly once and then does one `u64` map probe plus one key
/// compare.
#[derive(Debug)]
struct ShardState<K, V> {
    buckets: HashMap<u64, Vec<(K, Entry<V>)>>,
    /// Total entries across all buckets.
    len: usize,
    /// Hashes with a build in flight. Keyed by hash, not key: a 64-bit
    /// collision merely serializes two unrelated builds, it never
    /// produces a wrong value (waiters re-check their own key on wake).
    in_flight: HashSet<u64>,
    tick: u64,
}

#[derive(Debug)]
struct Shard<K, V> {
    state: Mutex<ShardState<K, V>>,
    ready: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inflight_waits: AtomicU64,
}

impl<K, V> Shard<K, V> {
    fn new() -> Shard<K, V> {
        Shard {
            state: Mutex::new(ShardState {
                buckets: HashMap::new(),
                len: 0,
                in_flight: HashSet::new(),
                tick: 0,
            }),
            ready: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inflight_waits: AtomicU64::new(0),
        }
    }
}

/// A claimed single-flight build: releases the hash from the shard's
/// `in_flight` set and wakes the shard's waiters when dropped. Running
/// the release on `Drop` makes the claim panic-safe — a builder that
/// unwinds (and is caught upstream, e.g. by a pool worker) can never
/// leave its key permanently claimed with waiters parked forever.
struct InFlightClaim<'a, K, V> {
    shard: &'a Shard<K, V>,
    hash: u64,
}

impl<K, V> Drop for InFlightClaim<'_, K, V> {
    fn drop(&mut self) {
        // Tolerate a poisoned lock: this drop may run during a panic
        // unwind, where a second panic would abort the process.
        let mut state = match self.shard.state.lock() {
            Ok(state) => state,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.in_flight.remove(&self.hash);
        drop(state);
        self.shard.ready.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

/// A lock-striped memoizing map with per-shard single-flight builds and
/// LRU-bounded capacity. See the [module docs](self) for the design.
#[derive(Debug)]
pub(crate) struct ShardedCache<K, V> {
    shards: Vec<Shard<K, V>>,
    /// Per-shard entry bound; `0` disables caching.
    shard_capacity: usize,
    /// Total bound as configured (kept for stats; the enforced bound is
    /// `shard_capacity` per shard).
    capacity: usize,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: usize,
}

impl<K: Clone + Eq + Hash, V: Clone> ShardedCache<K, V> {
    /// A cache bounded to `capacity` entries striped over `shards` locks.
    /// The shard count is clamped to `[1, 256]` and rounded up to a power
    /// of two; `capacity == 0` disables caching.
    pub(crate) fn new(capacity: usize, shards: usize) -> ShardedCache<K, V> {
        let shards = shards.clamp(1, 256).next_power_of_two();
        // Never stripe wider than the capacity: one entry per shard is
        // the useful minimum, and fewer shards keep LRU order exact for
        // small caches.
        let shards = if capacity == 0 {
            1
        } else {
            shards.min(capacity.next_power_of_two())
        };
        let shard_capacity = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards)
        };
        ShardedCache {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            shard_capacity,
            capacity,
            mask: shards - 1,
        }
    }

    /// Hashes the key once; the result selects the shard and indexes the
    /// shard's buckets.
    fn hash_of(key: &K) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        h.finish()
    }

    /// Returns `(value, was_cached)`; `was_cached` is true whenever the
    /// value came from another build (earlier or concurrent), so a miss
    /// is reported exactly once per cached entry. With caching disabled
    /// (`capacity == 0`) every call builds and `was_cached` is false.
    ///
    /// The builder runs outside the shard lock, single-flight per key:
    /// misses on different keys build in parallel while duplicates wait
    /// on their shard's condvar instead of regenerating. A failed — or
    /// panicking — build releases the key so the next waiter retries; an
    /// error is propagated to the caller that ran the builder, a panic
    /// unwinds through it (the claim is released by a drop guard, so a
    /// panic-catching caller such as a pool worker never leaves the key
    /// permanently claimed).
    pub(crate) fn get_or_build<E>(
        &self,
        key: &K,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<(V, bool), E> {
        let hash = Self::hash_of(key);
        let shard = &self.shards[(hash as usize) & self.mask];
        if self.shard_capacity == 0 {
            let value = build()?;
            shard.misses.fetch_add(1, Ordering::Relaxed);
            return Ok((value, false));
        }

        let mut state = shard.state.lock().expect("cache shard lock");
        loop {
            state.tick += 1;
            let tick = state.tick;
            if let Some(bucket) = state.buckets.get_mut(&hash) {
                if let Some((_, entry)) = bucket.iter_mut().find(|(k, _)| k == key) {
                    entry.last_used = tick;
                    let value = entry.value.clone();
                    // Counted before the lock drops: a stats snapshot can
                    // never see this hit without the entry it came from.
                    shard.hits.fetch_add(1, Ordering::Relaxed);
                    drop(state);
                    return Ok((value, true));
                }
            }
            if !state.in_flight.contains(&hash) {
                break;
            }
            shard.inflight_waits.fetch_add(1, Ordering::Relaxed);
            state = shard.ready.wait(state).expect("cache shard lock");
        }
        state.in_flight.insert(hash);
        drop(state);
        // From here the claim is owned by the guard: however the build
        // ends — value, error, or panic — the hash is released and the
        // shard's waiters are woken, exactly once.
        let claim = InFlightClaim { shard, hash };

        let built = build();

        let mut state = shard.state.lock().expect("cache shard lock");
        let result = match built {
            Ok(value) => {
                state.tick += 1;
                let tick = state.tick;
                // The key cannot already be resident: its hash was held
                // in `in_flight`, so every same-hash requester waited and
                // re-checked above.
                state.buckets.entry(hash).or_default().push((
                    key.clone(),
                    Entry {
                        value: value.clone(),
                        last_used: tick,
                    },
                ));
                state.len += 1;
                // Counted while the lock is held (insert and miss are one
                // atomic step to observers): a stats snapshot can never
                // see the entry without its miss, or the miss without its
                // entry — `misses >= entries + evictions` holds at every
                // instant.
                shard.misses.fetch_add(1, Ordering::Relaxed);
                while state.len > self.shard_capacity {
                    Self::evict_lru(&mut state);
                    shard.evictions.fetch_add(1, Ordering::Relaxed);
                }
                Ok((value, false))
            }
            // Waiters re-check and the next one retries the build.
            Err(e) => Err(e),
        };
        drop(state);
        drop(claim);
        result
    }

    /// Removes the least-recently-used entry of the shard (linear scan;
    /// runs only on over-capacity inserts, never on hits).
    fn evict_lru(state: &mut ShardState<K, V>) {
        let Some((&lru_hash, lru_pos)) = state
            .buckets
            .iter()
            .flat_map(|(h, bucket)| {
                bucket
                    .iter()
                    .enumerate()
                    .map(move |(i, (_, e))| ((h, i), e.last_used))
            })
            .min_by_key(|(_, used)| *used)
            .map(|(at, _)| at)
        else {
            return;
        };
        let bucket = state.buckets.get_mut(&lru_hash).expect("bucket exists");
        bucket.swap_remove(lru_pos);
        if bucket.is_empty() {
            state.buckets.remove(&lru_hash);
        }
        state.len -= 1;
    }

    /// Clones every resident `(key, value)` pair, shard by shard — the
    /// export half of cache snapshotting ([`crate::snapshot`]). Each
    /// shard is locked once; builds in flight when their shard is
    /// visited are simply not included. Order is shard-major and
    /// arbitrary within a shard.
    pub(crate) fn export(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let state = shard.state.lock().expect("cache shard lock");
            for bucket in state.buckets.values() {
                for (key, entry) in bucket {
                    out.push((key.clone(), entry.value.clone()));
                }
            }
        }
        out
    }

    /// Inserts one entry directly, bypassing the builder — the import
    /// half of cache snapshotting (warm boot). The insert is counted as
    /// a miss, preserving the per-shard invariant
    /// `misses >= entries + evictions` (the miss was paid by whoever
    /// built the snapshotted value, in a previous process). A key that
    /// is already resident is left untouched (no hit or miss counted),
    /// capacity is enforced with the usual LRU eviction, and a disabled
    /// cache (`capacity == 0`) ignores the seed entirely.
    pub(crate) fn seed(&self, key: K, value: V) {
        if self.shard_capacity == 0 {
            return;
        }
        let hash = Self::hash_of(&key);
        let shard = &self.shards[(hash as usize) & self.mask];
        let mut state = shard.state.lock().expect("cache shard lock");
        if let Some(bucket) = state.buckets.get(&hash) {
            if bucket.iter().any(|(k, _)| k == &key) {
                return;
            }
        }
        state.tick += 1;
        let tick = state.tick;
        state.buckets.entry(hash).or_default().push((
            key,
            Entry {
                value,
                last_used: tick,
            },
        ));
        state.len += 1;
        shard.misses.fetch_add(1, Ordering::Relaxed);
        while state.len > self.shard_capacity {
            Self::evict_lru(&mut state);
            shard.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Entries currently resident across all shards.
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.state.lock().expect("cache shard lock").len)
            .sum()
    }

    /// Drops every resident entry; counters are kept, and so are the
    /// in-flight claims: a build racing with the clear completes, inserts
    /// its (post-clear) value, and releases its claim normally, so
    /// waiters are never stranded and `in_flight` accounting returns to
    /// zero on its own.
    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            let mut state = shard.state.lock().expect("cache shard lock");
            state.buckets.clear();
            state.len = 0;
        }
    }

    /// A snapshot of the aggregate and per-shard counters.
    pub(crate) fn stats(&self) -> CacheStats {
        let mut out = CacheStats {
            capacity: self.capacity,
            shard_capacity: self.shard_capacity,
            shards: Vec::with_capacity(self.shards.len()),
            ..CacheStats::default()
        };
        for shard in &self.shards {
            // Counters are read while the shard lock is held, pairing
            // with the under-lock increments in `get_or_build`: each
            // shard's snapshot is internally coherent (see module docs).
            let s = {
                let state = shard.state.lock().expect("cache shard lock");
                ShardStats {
                    entries: state.len,
                    hits: shard.hits.load(Ordering::Relaxed),
                    misses: shard.misses.load(Ordering::Relaxed),
                    evictions: shard.evictions.load(Ordering::Relaxed),
                    inflight_waits: shard.inflight_waits.load(Ordering::Relaxed),
                    in_flight: state.in_flight.len(),
                }
            };
            out.entries += s.entries;
            out.hits += s.hits;
            out.misses += s.misses;
            out.evictions += s.evictions;
            out.inflight_waits += s.inflight_waits;
            out.in_flight += s.in_flight;
            out.shards.push(s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    fn ok(v: u32) -> impl FnOnce() -> Result<u32, Infallible> {
        move || Ok(v)
    }

    #[test]
    fn hits_after_first_build() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(64, 4);
        assert_eq!(cache.get_or_build(&1, ok(10)).unwrap(), (10, false));
        assert_eq!(cache.get_or_build(&1, ok(99)).unwrap(), (10, true));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(2, 1);
        cache.get_or_build(&1, ok(1)).unwrap();
        cache.get_or_build(&2, ok(2)).unwrap();
        // Touch 1 so 2 becomes the LRU entry, then insert 3.
        assert!(cache.get_or_build(&1, ok(0)).unwrap().1);
        cache.get_or_build(&3, ok(3)).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get_or_build(&1, ok(0)).unwrap().1, "1 survives");
        assert!(!cache.get_or_build(&2, ok(2)).unwrap().1, "2 was evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(0, 8);
        assert_eq!(cache.get_or_build(&1, ok(10)).unwrap(), (10, false));
        assert_eq!(cache.get_or_build(&1, ok(11)).unwrap(), (11, false));
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn shard_count_is_clamped_to_capacity() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(2, 64);
        assert_eq!(cache.stats().shards.len(), 2);
        let unbounded: ShardedCache<u32, u32> = ShardedCache::new(4096, 6);
        assert_eq!(unbounded.stats().shards.len(), 8, "rounded to power of two");
    }

    #[test]
    fn failed_build_releases_the_key() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(16, 1);
        assert!(cache.get_or_build(&7, || Err::<u32, &str>("boom")).is_err());
        assert_eq!(cache.get_or_build(&7, ok(42)).unwrap(), (42, false));
    }

    #[test]
    fn panicking_build_releases_the_key() {
        // A pool worker catches request panics, so a panicking builder
        // must not leave its in-flight claim behind — later requests for
        // the same key would otherwise wait forever.
        let cache: ShardedCache<u32, u32> = ShardedCache::new(16, 1);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_build(&7, || -> Result<u32, &str> { panic!("builder blew up") })
        }));
        assert!(unwound.is_err(), "panic propagates to the builder's caller");
        assert_eq!(cache.stats().in_flight, 0, "claim released by the guard");
        assert_eq!(cache.get_or_build(&7, ok(42)).unwrap(), (42, false));
    }

    #[test]
    fn clear_during_inflight_build_keeps_accounting_consistent() {
        use std::sync::atomic::AtomicBool;
        let cache: ShardedCache<u32, u32> = ShardedCache::new(16, 1);
        let release = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                cache
                    .get_or_build(&1, || {
                        while !release.load(Ordering::Acquire) {
                            std::thread::yield_now();
                        }
                        Ok::<_, Infallible>(7)
                    })
                    .unwrap();
            });
            // Wait until the builder has claimed the key, then clear.
            while cache.stats().in_flight == 0 {
                std::thread::yield_now();
            }
            cache.clear();
            assert_eq!(
                cache.stats().in_flight,
                1,
                "clearing must not revoke an in-flight claim"
            );
            release.store(true, Ordering::Release);
        });
        let stats = cache.stats();
        assert_eq!(stats.in_flight, 0, "claim released after the build");
        assert_eq!(stats.entries, 1, "the racing build landed post-clear");
        assert_eq!(cache.get_or_build(&1, ok(9)).unwrap(), (7, true));
    }

    #[test]
    fn stats_snapshots_stay_coherent_under_concurrent_traffic() {
        // Regression test for the counter ordering: inserts count their
        // miss and hits count themselves *under the shard lock*, so a
        // concurrent stats() poll (the serve stats endpoint) must always
        // observe `misses >= entries + evictions` and `hits + misses`
        // never exceeding the operations issued so far, per shard.
        let cache: ShardedCache<u32, u32> = ShardedCache::new(8, 4);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let writers: Vec<_> = (0..2u32)
                .map(|t| {
                    let cache = &cache;
                    scope.spawn(move || {
                        for i in 0..4000u32 {
                            let key = (i % 23) * 2 + t;
                            cache.get_or_build(&key, ok(key)).unwrap();
                        }
                    })
                })
                .collect();
            let poller = scope.spawn(|| {
                let mut polls = 0u64;
                while !stop.load(Ordering::Acquire) {
                    for s in cache.stats().shards {
                        assert!(
                            s.misses >= (s.entries as u64 + s.evictions),
                            "incoherent shard snapshot: {s:?}"
                        );
                    }
                    polls += 1;
                }
                polls
            });
            for writer in writers {
                writer.join().unwrap();
            }
            stop.store(true, Ordering::Release);
            assert!(poller.join().unwrap() > 0, "the poller actually raced");
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8000);
    }

    #[test]
    fn export_and_seed_round_trip() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(16, 4);
        cache.get_or_build(&1, ok(10)).unwrap();
        cache.get_or_build(&2, ok(20)).unwrap();
        let mut entries = cache.export();
        entries.sort_unstable();
        assert_eq!(entries, vec![(1, 10), (2, 20)]);

        let warm: ShardedCache<u32, u32> = ShardedCache::new(16, 4);
        for (k, v) in entries {
            warm.seed(k, v);
        }
        // Seeded entries are pure hits, and the invariant held at boot.
        assert_eq!(warm.get_or_build(&1, ok(99)).unwrap(), (10, true));
        assert_eq!(warm.get_or_build(&2, ok(99)).unwrap(), (20, true));
        let stats = warm.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.misses, 2, "each seed counts as a paid miss");
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn seed_respects_capacity_residency_and_disablement() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(2, 1);
        cache.seed(1, 1);
        cache.seed(1, 42);
        assert_eq!(cache.get_or_build(&1, ok(0)).unwrap(), (1, true));
        cache.seed(2, 2);
        cache.seed(3, 3);
        assert_eq!(cache.len(), 2, "seeding past capacity evicts LRU");
        assert_eq!(cache.stats().evictions, 1);

        let off: ShardedCache<u32, u32> = ShardedCache::new(0, 1);
        off.seed(1, 1);
        assert_eq!(off.len(), 0);
        assert_eq!(off.stats().misses, 0, "disabled cache ignores seeds");
    }

    #[test]
    fn concurrent_misses_single_flight() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(16, 4);
        let builds = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let (v, _) = cache
                        .get_or_build(&5, || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            // Widen the race window so waiters actually pile up.
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            Ok::<_, Infallible>(55)
                        })
                        .unwrap();
                    assert_eq!(v, 55);
                });
            }
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1, "exactly one build");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }
}
