//! Versioned cache snapshots: warm-restart persistence for the
//! session's sweep tier.
//!
//! A long-lived engine accumulates its value in the
//! [`RequestClass::Sweeps`](crate::RequestClass) cache — whole
//! [`SweepReport`]s and the per-corner [`CornerRow`]s they fan out are
//! the expensive composite results a restart would otherwise stampede
//! the engine to rebuild. This module serializes exactly that cache to
//! a single versioned file ([`save`]) and seeds it back on boot
//! ([`load`]), so a restarted server answers the same sweeps as pure
//! cache hits. The other classes (cells, libraries, immunity, flows)
//! rebuild cold: their values embed full layout geometry and are cheap
//! relative to a sweep's MC + transient work.
//!
//! # Format
//!
//! A flat little-endian binary stream:
//!
//! ```text
//! magic   8 bytes  "CNFSWEEP"
//! version u32      1
//! count   u32      number of entries
//! entry*  u8 tag   0 = whole sweep report, 1 = one corner row
//!         key      length-prefixed canonical cache-key string
//!         value    SweepReport / CornerRow, field by field
//! ```
//!
//! Floats are serialized as raw IEEE-754 bits, so a round trip is
//! byte-exact and the determinism contract (byte-identical rendered
//! reports) survives a restart. There is no partial recovery: any
//! truncation, bad magic, or version mismatch fails the whole [`load`]
//! with a [`SnapshotError`] and seeds **nothing** — a corrupt snapshot
//! degrades to a cold boot, never to a half-warm cache or a crash.
//!
//! Cache keys are stored as their canonical strings (the same strings
//! the session keys the `Sweeps` class by), so key hashing — which is
//! process-specific ([`std::collections::hash_map::DefaultHasher`] is
//! not stable across processes) — is simply recomputed on seed.

use crate::core::StdCellKind;
use crate::dk::TimingTable;
use crate::request::{CacheKey, KeyInner, RequestClass};
use crate::session::{CachedValue, Session};
use crate::sweep::{CornerRow, CornerSummary, SweepReport, VariationCorner};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"CNFSWEEP";

/// Current snapshot format version. Bump on any layout change — old
/// files then fail [`load`] with [`SnapshotError::Version`] and the
/// server boots cold instead of misreading them.
pub const VERSION: u32 = 1;

/// Why a snapshot failed to load. Loading is all-or-nothing: any error
/// leaves the session untouched (cold).
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The file is not a snapshot (bad magic), or is truncated or
    /// structurally invalid.
    Corrupt(String),
    /// The file is a snapshot of an incompatible format version.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build reads ([`VERSION`]).
        expected: u32,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot read failed: {e}"),
            SnapshotError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
            SnapshotError::Version { found, expected } => {
                write!(f, "snapshot version {found} (this build reads {expected})")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Save / load
// ---------------------------------------------------------------------------

/// Serializes every snapshot save in the process. The staging file is
/// the *fixed* sibling `<path>.tmp`: without this guard, two concurrent
/// saves — a periodic flusher racing a shutdown snapshot, or two
/// embedder threads — interleave their writes on that one temp file and
/// then rename torn bytes into place, which the next boot rejects as
/// corrupt. The guard also gives [`save_if`] its atomicity: the permit
/// closure is evaluated under the same lock the write happens under, so
/// a "shutdown has not begun" check cannot go stale between the check
/// and the rename.
static SAVE_LOCK: Mutex<()> = Mutex::new(());

/// Serializes the session's `Sweeps` cache to `path`, atomically: the
/// bytes land in a sibling `<path>.tmp` first and are renamed into
/// place, so a crash mid-write can never leave a truncated file where
/// the next boot expects a snapshot. Saves are serialized process-wide
/// (see [`save_if`]), so concurrent callers cannot corrupt each other's
/// staging file. Returns the number of entries written.
pub fn save(session: &Session, path: &Path) -> std::io::Result<usize> {
    save_if(session, path, || true)
        .map(|written| written.expect("an unconditional save is always permitted"))
}

/// [`save`], gated by a `permit` evaluated **under the process-wide save
/// lock**: when the permit returns `false`, nothing is written and
/// `Ok(None)` comes back. This is the seam a periodic flusher uses to
/// lose gracefully to a shutdown snapshot — with the permit checking
/// "shutdown has not begun" under the same guard the shutdown save will
/// take, a late flush is either fully renamed before the shutdown save
/// starts, or skipped entirely; it can never overwrite the final
/// snapshot or tear its staging file.
pub fn save_if(
    session: &Session,
    path: &Path,
    permit: impl FnOnce() -> bool,
) -> std::io::Result<Option<usize>> {
    // A poisoned guard only means some earlier save panicked mid-stage;
    // the target file is still intact (rename is last), so keep saving.
    let _guard = SAVE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    if !permit() {
        return Ok(None);
    }
    let entries = session.class_cache(RequestClass::Sweeps).export();
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    put_u32(&mut buf, VERSION);
    // Count patched in after the walk: type-erased entries that fail the
    // class downcast (none in practice) are skipped, not miscounted.
    let count_at = buf.len();
    put_u32(&mut buf, 0);
    let mut count = 0u32;
    for (key, value) in &entries {
        match &key.0 {
            KeyInner::Sweep(k) => {
                let Some(report) = value.downcast_ref::<Arc<SweepReport>>() else {
                    continue;
                };
                buf.push(0);
                put_str(&mut buf, k);
                put_report(&mut buf, report);
            }
            KeyInner::SweepCorner(k) => {
                let Some(row) = value.downcast_ref::<CornerRow>() else {
                    continue;
                };
                buf.push(1);
                put_str(&mut buf, k);
                put_row(&mut buf, row);
            }
            _ => continue,
        }
        count += 1;
    }
    buf[count_at..count_at + 4].copy_from_slice(&count.to_le_bytes());

    let tmp = tmp_path(path);
    std::fs::write(&tmp, &buf)?;
    std::fs::rename(&tmp, path)?;
    Ok(Some(count as usize))
}

/// Seeds the session's `Sweeps` cache from a snapshot at `path`,
/// returning the number of entries restored. The whole file is parsed
/// before anything is seeded, so an error means the session is exactly
/// as cold as before the call.
pub fn load(session: &Session, path: &Path) -> Result<usize, SnapshotError> {
    let bytes = std::fs::read(path)?;
    let mut r = Reader::new(&bytes);
    if r.take(8)? != MAGIC {
        return Err(SnapshotError::Corrupt("bad magic".into()));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(SnapshotError::Version {
            found: version,
            expected: VERSION,
        });
    }
    let count = r.u32()? as usize;
    let mut seeds: Vec<(CacheKey, CachedValue)> = Vec::with_capacity(count);
    for _ in 0..count {
        match r.u8()? {
            0 => {
                let key = r.string()?;
                let report = get_report(&mut r)?;
                seeds.push((
                    CacheKey(KeyInner::Sweep(key)),
                    // Wrapped exactly as `Session::run` caches a
                    // `SweepRequest::Output = Arc<SweepReport>`.
                    Arc::new(Arc::new(report)) as CachedValue,
                ));
            }
            1 => {
                let key = r.string()?;
                let row = get_row(&mut r)?;
                seeds.push((
                    CacheKey(KeyInner::SweepCorner(key)),
                    Arc::new(row) as CachedValue,
                ));
            }
            tag => return Err(SnapshotError::Corrupt(format!("unknown entry tag {tag}"))),
        }
    }
    if !r.at_end() {
        return Err(SnapshotError::Corrupt("trailing bytes".into()));
    }
    let cache = session.class_cache(RequestClass::Sweeps);
    let restored = seeds.len();
    for (key, value) in seeds {
        cache.seed(key, value);
    }
    Ok(restored)
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_opt(buf: &mut Vec<u8>, present: bool) -> bool {
    buf.push(present as u8);
    present
}

fn put_f64s(buf: &mut Vec<u8>, vs: &[f64]) {
    put_u32(buf, vs.len() as u32);
    for &v in vs {
        put_f64(buf, v);
    }
}

fn put_kind(buf: &mut Vec<u8>, kind: StdCellKind) {
    let (tag, arg) = match kind {
        StdCellKind::Inv => (0u8, 0u8),
        StdCellKind::Nand(n) => (1, n),
        StdCellKind::Nor(n) => (2, n),
        StdCellKind::Aoi21 => (3, 0),
        StdCellKind::Aoi22 => (4, 0),
        StdCellKind::Aoi31 => (5, 0),
        StdCellKind::Oai21 => (6, 0),
        StdCellKind::Oai22 => (7, 0),
    };
    buf.push(tag);
    buf.push(arg);
}

fn put_corner(buf: &mut Vec<u8>, c: &VariationCorner) {
    put_u32(buf, c.tubes_per_4lambda);
    put_f64(buf, c.pitch_scale);
    put_f64(buf, c.metallic_fraction);
    put_u64(buf, c.seed);
}

fn put_row(buf: &mut Vec<u8>, row: &CornerRow) {
    put_str(buf, &row.cell);
    put_kind(buf, row.kind);
    buf.push(row.strength);
    put_corner(buf, &row.corner);
    if put_opt(buf, row.mc_tubes.is_some()) {
        put_u64(buf, row.mc_tubes.unwrap() as u64);
    }
    if put_opt(buf, row.mc_failures.is_some()) {
        put_u64(buf, row.mc_failures.unwrap() as u64);
    }
    if put_opt(buf, row.immune.is_some()) {
        buf.push(row.immune.unwrap() as u8);
    }
    if put_opt(buf, row.metallic_yield.is_some()) {
        put_f64(buf, row.metallic_yield.unwrap());
    }
    if put_opt(buf, row.timing.is_some()) {
        let t = row.timing.as_ref().unwrap();
        put_f64s(buf, &t.loads_f);
        put_f64s(buf, &t.delays_s);
        put_f64(buf, t.energy_j);
    }
    if put_opt(buf, row.liberty.is_some()) {
        put_str(buf, row.liberty.as_ref().unwrap());
    }
    if put_opt(buf, row.waveform.is_some()) {
        put_str(buf, row.waveform.as_ref().unwrap());
    }
}

fn put_summary(buf: &mut Vec<u8>, s: &CornerSummary) {
    put_u64(buf, s.corner_index as u64);
    put_corner(buf, &s.corner);
    for v in [s.min_yield, s.max_delay_s, s.total_energy_j] {
        if put_opt(buf, v.is_some()) {
            put_f64(buf, v.unwrap());
        }
    }
}

fn put_report(buf: &mut Vec<u8>, report: &SweepReport) {
    put_u64(buf, report.cells as u64);
    put_u32(buf, report.corners.len() as u32);
    for c in &report.corners {
        put_corner(buf, c);
    }
    put_u32(buf, report.rows.len() as u32);
    for row in &report.rows {
        put_row(buf, row);
    }
    put_u32(buf, report.pareto.len() as u32);
    for &i in &report.pareto {
        put_u64(buf, i as u64);
    }
    for summary in [&report.best_corner, &report.worst_corner] {
        if put_opt(buf, summary.is_some()) {
            put_summary(buf, summary.as_ref().unwrap());
        }
    }
}

// ---------------------------------------------------------------------------
// Readers
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| SnapshotError::Corrupt(format!("truncated at byte {}", self.at)))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn at_end(&self) -> bool {
        self.at == self.bytes.len()
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt(format!("invalid bool byte {b}"))),
        }
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("non-UTF-8 string".into()))
    }

    fn f64s(&mut self) -> Result<Vec<f64>, SnapshotError> {
        let len = self.u32()? as usize;
        (0..len).map(|_| self.f64()).collect()
    }

    fn opt<T>(
        &mut self,
        read: impl FnOnce(&mut Self) -> Result<T, SnapshotError>,
    ) -> Result<Option<T>, SnapshotError> {
        if self.bool()? {
            read(self).map(Some)
        } else {
            Ok(None)
        }
    }
}

fn get_kind(r: &mut Reader) -> Result<StdCellKind, SnapshotError> {
    let tag = r.u8()?;
    let arg = r.u8()?;
    Ok(match tag {
        0 => StdCellKind::Inv,
        1 => StdCellKind::Nand(arg),
        2 => StdCellKind::Nor(arg),
        3 => StdCellKind::Aoi21,
        4 => StdCellKind::Aoi22,
        5 => StdCellKind::Aoi31,
        6 => StdCellKind::Oai21,
        7 => StdCellKind::Oai22,
        _ => return Err(SnapshotError::Corrupt(format!("unknown cell kind {tag}"))),
    })
}

fn get_corner(r: &mut Reader) -> Result<VariationCorner, SnapshotError> {
    Ok(VariationCorner {
        tubes_per_4lambda: r.u32()?,
        pitch_scale: r.f64()?,
        metallic_fraction: r.f64()?,
        seed: r.u64()?,
    })
}

fn get_row(r: &mut Reader) -> Result<CornerRow, SnapshotError> {
    Ok(CornerRow {
        cell: r.string()?,
        kind: get_kind(r)?,
        strength: r.u8()?,
        corner: get_corner(r)?,
        mc_tubes: r.opt(|r| r.u64().map(|v| v as usize))?,
        mc_failures: r.opt(|r| r.u64().map(|v| v as usize))?,
        immune: r.opt(Reader::bool)?,
        metallic_yield: r.opt(Reader::f64)?,
        timing: r.opt(|r| {
            Ok(TimingTable {
                loads_f: r.f64s()?,
                delays_s: r.f64s()?,
                energy_j: r.f64()?,
            })
        })?,
        liberty: r.opt(Reader::string)?,
        waveform: r.opt(Reader::string)?,
    })
}

fn get_summary(r: &mut Reader) -> Result<CornerSummary, SnapshotError> {
    Ok(CornerSummary {
        corner_index: r.u64()? as usize,
        corner: get_corner(r)?,
        min_yield: r.opt(Reader::f64)?,
        max_delay_s: r.opt(Reader::f64)?,
        total_energy_j: r.opt(Reader::f64)?,
    })
}

fn get_report(r: &mut Reader) -> Result<SweepReport, SnapshotError> {
    let cells = r.u64()? as usize;
    let corner_count = r.u32()? as usize;
    let corners = (0..corner_count)
        .map(|_| get_corner(r))
        .collect::<Result<Vec<_>, _>>()?;
    let row_count = r.u32()? as usize;
    let rows = (0..row_count)
        .map(|_| get_row(r))
        .collect::<Result<Vec<_>, _>>()?;
    let pareto_count = r.u32()? as usize;
    let pareto = (0..pareto_count)
        .map(|_| r.u64().map(|v| v as usize))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SweepReport {
        cells,
        corners,
        rows,
        pareto,
        best_corner: r.opt(get_summary)?,
        worst_corner: r.opt(get_summary)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row(seed: u64) -> CornerRow {
        CornerRow {
            cell: "NAND2_X1".into(),
            kind: StdCellKind::Nand(2),
            strength: 1,
            corner: VariationCorner {
                tubes_per_4lambda: 26,
                pitch_scale: 1.25,
                metallic_fraction: 0.02,
                seed,
            },
            mc_tubes: Some(400),
            mc_failures: Some(3),
            immune: Some(false),
            metallic_yield: Some(0.875),
            timing: Some(TimingTable {
                loads_f: vec![1e-15, 4e-15],
                delays_s: vec![1.5e-12, 3.25e-12],
                energy_j: 2.5e-16,
            }),
            liberty: Some("cell (NAND2_X1) { }".into()),
            waveform: None,
        }
    }

    fn sample_report() -> SweepReport {
        let rows = vec![sample_row(1), sample_row(2)];
        let corners = vec![rows[0].corner, rows[1].corner];
        SweepReport {
            cells: 1,
            corners,
            rows,
            pareto: vec![0],
            best_corner: Some(CornerSummary {
                corner_index: 0,
                corner: VariationCorner::nominal(),
                min_yield: Some(0.99),
                max_delay_s: Some(1.5e-12),
                total_energy_j: None,
            }),
            worst_corner: None,
        }
    }

    #[test]
    fn row_and_report_round_trip_exactly() {
        let mut buf = Vec::new();
        put_row(&mut buf, &sample_row(7));
        let mut r = Reader::new(&buf);
        let row = get_row(&mut r).expect("row decodes");
        assert!(r.at_end());
        assert_eq!(format!("{row:?}"), format!("{:?}", sample_row(7)));

        let mut buf = Vec::new();
        put_report(&mut buf, &sample_report());
        let mut r = Reader::new(&buf);
        let report = get_report(&mut r).expect("report decodes");
        assert!(r.at_end());
        assert_eq!(format!("{report:?}"), format!("{:?}", sample_report()));
    }

    #[test]
    fn truncation_and_garbage_fail_without_panicking() {
        let mut buf = Vec::new();
        put_report(&mut buf, &sample_report());
        for cut in [0, 1, buf.len() / 2, buf.len() - 1] {
            let mut r = Reader::new(&buf[..cut]);
            assert!(get_report(&mut r).is_err(), "cut at {cut} must error");
        }
        let mut r = Reader::new(&[0xFF; 64]);
        assert!(get_row(&mut r).is_err());
    }

    #[test]
    fn session_save_load_replays_as_pure_hits() {
        use crate::immunity::McOptions;
        use crate::sweep::{SweepMetrics, SweepRequest, VariationGrid};

        let request = SweepRequest::new([StdCellKind::Inv])
            .grid(VariationGrid::nominal().seeds([1, 2]))
            .metrics(SweepMetrics::IMMUNITY)
            .mc(McOptions {
                tubes: 50,
                ..McOptions::default()
            });
        let session = Session::new();
        let report = session.run(&request).expect("sweep runs");

        let dir = std::env::temp_dir().join(format!(
            "cnfet-snap-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.snap");
        // 1 whole report + 2 corner rows.
        assert_eq!(session.save_snapshot(&path).expect("saves"), 3);

        let warm = Session::new();
        assert_eq!(warm.load_snapshot(&path).expect("loads"), 3);
        let misses_before = warm.stats().sweeps.misses;
        let replay = warm.run(&request).expect("replay");
        let stats = warm.stats();
        assert_eq!(stats.sweeps.misses, misses_before, "no new execution");
        assert!(stats.sweeps.hits >= 1, "replay hit the seeded report");
        assert_eq!(format!("{replay:?}"), format!("{report:?}"));

        // Corrupt and version-mismatched files fail cleanly and seed
        // nothing.
        let bytes = std::fs::read(&path).unwrap();
        let corrupt = dir.join("corrupt.snap");
        std::fs::write(&corrupt, &bytes[..bytes.len() / 2]).unwrap();
        let cold = Session::new();
        assert!(matches!(
            cold.load_snapshot(&corrupt),
            Err(SnapshotError::Corrupt(_))
        ));
        let mut versioned = bytes.clone();
        versioned[8..12].copy_from_slice(&99u32.to_le_bytes());
        let mismatched = dir.join("versioned.snap");
        std::fs::write(&mismatched, &versioned).unwrap();
        assert!(matches!(
            cold.load_snapshot(&mismatched),
            Err(SnapshotError::Version {
                found: 99,
                expected: VERSION
            })
        ));
        assert_eq!(cold.cache_stats(RequestClass::Sweeps).entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_saves_never_tear_the_staging_file() {
        use crate::immunity::McOptions;
        use crate::sweep::{SweepMetrics, SweepRequest, VariationGrid};

        let request = SweepRequest::new([StdCellKind::Inv])
            .grid(VariationGrid::nominal().seeds([1, 2]))
            .metrics(SweepMetrics::IMMUNITY)
            .mc(McOptions {
                tubes: 50,
                ..McOptions::default()
            });
        let session = Session::new();
        session.run(&request).expect("sweep runs");

        let dir = std::env::temp_dir().join(format!(
            "cnfet-snap-race-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.snap");

        // Before the save lock, these interleaved writes to the shared
        // `<path>.tmp` could rename torn bytes into place; now every
        // save stages and renames alone, so the survivor always loads.
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..4 {
                        assert_eq!(session.save_snapshot(&path).expect("saves"), 3);
                    }
                });
            }
        });
        let warm = Session::new();
        assert_eq!(warm.load_snapshot(&path).expect("survivor loads"), 3);
    }

    #[test]
    fn save_if_denied_permit_writes_nothing() {
        let session = Session::new();
        let dir = std::env::temp_dir().join(format!(
            "cnfet-snap-permit-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.snap");
        assert_eq!(save_if(&session, &path, || false).expect("skips"), None);
        assert!(!path.exists(), "a denied save leaves no file behind");
        assert_eq!(save_if(&session, &path, || true).expect("saves"), Some(0));
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
