//! The [`SessionRequest`] trait: one generic seam for every request the
//! [`Session`](crate::Session) engine can service.
//!
//! PR 1 gave the session four hand-plumbed entry points (`generate`,
//! `library`, `immunity`, `flow`), each re-implementing cache-key
//! construction and memoization, and only cells could fan out through the
//! batch executor. This module retires that shape: every request kind —
//! [`CellRequest`], [`LibraryRequest`], [`ImmunityRequest`],
//! [`FlowRequest`], the composite [`SweepRequest`] /
//! [`SweepCornerRequest`] pair, and the uncached [`TranRequest`] —
//! implements [`SessionRequest`], and
//! memoization, single-flight, and stats accounting live once, in the
//! generic [`Session::run`](crate::Session::run).
//!
//! The trait has three hooks:
//!
//! * [`SessionRequest::cache_key`] — the request's complete memoization
//!   input as a [`CacheKey`], or `None` for requests that must not be
//!   cached at this level (the [`RequestKind`] dispatch wrapper returns
//!   `None` because the inner request memoizes itself);
//! * [`SessionRequest::execute`] — the miss path: the actual work, run
//!   single-flight per key outside the cache locks;
//! * [`SessionRequest::annotate`] — a post-cache touch-up applied to
//!   every result (cells use it to set [`CellResult::cached`]).
//!
//! Heterogeneous mixes go through [`RequestKind`] (an enum over every
//! request kind) and come back as [`ResponseKind`] — the currency of
//! [`Session::submit_all`](crate::Session::submit_all).
//!
//! The trait is sealed: the set of request kinds is fixed per release, so
//! [`CacheKey`] can stay opaque and the session can hold exactly one
//! cache per [`RequestClass`].

use crate::core::generate_from_networks;
use crate::dk::{self, CellLibrary};
use crate::error::{CnfetError, Result};
use crate::flow::{
    assemble_gds_with, full_adder, parse_verilog, place_cmos_with, place_cnfet_with,
    simulate_netlist_with, Tech,
};
use crate::immunity::{certify, simulate};
use crate::macros::{MacroReport, MacroRequest, MacroSliceRequest, SliceOutcome};
use crate::optimize::{
    CandidateOutcome, OptimizeCandidateRequest, OptimizeReport, OptimizeRequest,
};
use crate::repair::{DieOutcome, DieRequest, RepairReport, RepairRequest};
use crate::session::{
    CellKey, CellRequest, CellResult, FlowRequest, FlowResult, FlowSource, FlowTarget,
    ImmunityEngine, ImmunityReport, ImmunityRequest, LibraryRequest, Session, TranRequest,
    TranResult,
};
use crate::sweep::{CornerRow, SweepCornerRequest, SweepReport, SweepRequest};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Request classes and cache keys
// ---------------------------------------------------------------------------

/// The eight request kinds a session services, each with its own
/// memoization cache and per-kind counters in
/// [`SessionStats`](crate::SessionStats).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestClass {
    /// One standard-cell layout ([`CellRequest`]).
    Cell,
    /// A full standard-cell library ([`LibraryRequest`]).
    Library,
    /// A mispositioned-CNT immunity verdict ([`ImmunityRequest`]).
    Immunity,
    /// A logic-to-GDSII flow run ([`FlowRequest`]).
    Flow,
    /// A variation-aware characterization sweep — both whole sweeps
    /// ([`SweepRequest`]) and the per-corner sub-requests they fan out
    /// ([`SweepCornerRequest`]) memoize here, so overlapping sweeps share
    /// corner results.
    Sweeps,
    /// A per-die defect-map repair lot — both whole lots
    /// ([`RepairRequest`]) and the per-die sub-requests they fan out
    /// ([`DieRequest`]) memoize here, so overlapping lots share die
    /// outcomes.
    Repairs,
    /// A processing↔circuit co-optimization search — both whole
    /// trajectories ([`OptimizeRequest`]) and the per-candidate outcomes
    /// they derive ([`OptimizeCandidateRequest`]) memoize here, so a
    /// re-run against a different target replays every already-measured
    /// candidate as a hit (the measurements are target-free; only the
    /// scoring depends on the target).
    Optimizations,
    /// A hierarchical arithmetic macro — both whole macros
    /// ([`MacroRequest`]) and the per-bit-slice sub-requests they fan
    /// out ([`MacroSliceRequest`]) memoize here, so overlapping macros
    /// share slice characterizations (and the sub-cell layouts they
    /// recall live in the `Cell` class, shared with library builds).
    Macros,
}

impl RequestClass {
    /// Every request class, in cache order.
    pub const ALL: [RequestClass; 8] = [
        RequestClass::Cell,
        RequestClass::Library,
        RequestClass::Immunity,
        RequestClass::Flow,
        RequestClass::Sweeps,
        RequestClass::Repairs,
        RequestClass::Optimizations,
        RequestClass::Macros,
    ];

    /// Stable index of this class into the session's cache array.
    pub(crate) fn index(self) -> usize {
        match self {
            RequestClass::Cell => 0,
            RequestClass::Library => 1,
            RequestClass::Immunity => 2,
            RequestClass::Flow => 3,
            RequestClass::Sweeps => 4,
            RequestClass::Repairs => 5,
            RequestClass::Optimizations => 6,
            RequestClass::Macros => 7,
        }
    }

    /// Human-readable class name (`"cell"`, `"library"`, …).
    pub fn name(self) -> &'static str {
        match self {
            RequestClass::Cell => "cell",
            RequestClass::Library => "library",
            RequestClass::Immunity => "immunity",
            RequestClass::Flow => "flow",
            RequestClass::Sweeps => "sweeps",
            RequestClass::Repairs => "repairs",
            RequestClass::Optimizations => "optimizations",
            RequestClass::Macros => "macros",
        }
    }
}

/// A request's complete memoization input: which cache it lives in plus
/// everything that distinguishes two non-interchangeable requests of that
/// class. Two requests with equal keys are served the same cached result.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey(pub(crate) KeyInner);

/// The class-tagged key payload. Each variant belongs to exactly one
/// request class — the tag is what lets all four caches share one value
/// representation without keys of different kinds ever colliding.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) enum KeyInner {
    /// Cells: the full generation input (see [`CellKey`]).
    Cell(CellKey),
    /// Libraries: the request itself (scheme) is the complete input.
    Library(LibraryRequest),
    /// Immunity: the analyzed cell's key plus a canonical rendering of
    /// the engine selection (`McOptions` holds floats, so the engine is
    /// keyed by its exact `Debug` form — equal options render equally,
    /// distinct options render distinctly).
    Immunity { cell: CellKey, engine: String },
    /// Flows: the request's canonical `Debug` rendering, which covers
    /// source, target, simulation spec and GDS flag.
    Flow(String),
    /// Whole sweeps: a canonical rendering of the resolved cell keys plus
    /// the grid, metric selection, MC base options, and loads.
    Sweep(String),
    /// One sweep corner: the resolved cell key plus the corner and the
    /// metric/MC/load configuration. Lives in the [`RequestClass::Sweeps`]
    /// cache next to whole sweeps — the variant tag keeps a one-corner
    /// sweep and its own corner from ever colliding.
    SweepCorner(String),
    /// Whole repair lots: a canonical rendering of the resolved cell
    /// keys plus the lot size, seed, spare count, process parameters,
    /// solver, and adjacency constraints.
    Repair(String),
    /// One die's repair: the same rendering with the die *index* in
    /// place of the lot size — never the surrounding lot's die count, so
    /// overlapping lots share die outcomes. Lives in the
    /// [`RequestClass::Repairs`] cache next to whole lots; the variant
    /// tag keeps a one-die lot and its own die from ever colliding.
    Die(String),
    /// Whole optimization trajectories: a canonical rendering of the
    /// resolved cell keys plus the search grid, target, pass count,
    /// metric selection, MC base options, and loads.
    Optimize(String),
    /// One measured candidate: the resolved cell keys plus the
    /// candidate's canonical corner coordinates and the seed/metric/MC/
    /// load configuration — never the target, so re-targeted searches
    /// replay measured candidates as hits. Lives in the
    /// [`RequestClass::Optimizations`] cache next to whole trajectories.
    OptimizeCandidate(String),
    /// Whole adder macros: a canonical rendering of the kind, width,
    /// scheme and jitter seed (the attached observer is *observation,
    /// not identity* — excluded, like every other composite's).
    Macro(String),
    /// One bit slice's characterization: the same rendering plus the
    /// bit index. The macro *width* stays in the key — a CLA bit's
    /// prefix-tree fan-out depends on the width it sits in, so equal
    /// bits of different widths are different work. Lives in the
    /// [`RequestClass::Macros`] cache next to whole macros.
    MacroSlice(String),
}

impl CacheKey {
    /// Which request class (and therefore which session cache) this key
    /// belongs to.
    pub fn class(&self) -> RequestClass {
        match self.0 {
            KeyInner::Cell(_) => RequestClass::Cell,
            KeyInner::Library(_) => RequestClass::Library,
            KeyInner::Immunity { .. } => RequestClass::Immunity,
            KeyInner::Flow(_) => RequestClass::Flow,
            KeyInner::Sweep(_) | KeyInner::SweepCorner(_) => RequestClass::Sweeps,
            KeyInner::Repair(_) | KeyInner::Die(_) => RequestClass::Repairs,
            KeyInner::Optimize(_) | KeyInner::OptimizeCandidate(_) => RequestClass::Optimizations,
            KeyInner::Macro(_) | KeyInner::MacroSlice(_) => RequestClass::Macros,
        }
    }
}

mod sealed {
    /// Seals [`SessionRequest`](super::SessionRequest): the request-kind
    /// set is fixed per release so cache keys stay class-exact.
    pub trait Sealed {}
}

// ---------------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------------

/// A typed request the [`Session`] engine can service generically.
///
/// Implementations define where a result is memoized ([`cache_key`]) and
/// how it is produced on a miss ([`execute`]); the session supplies the
/// rest — sharded caching, per-key single-flight, stats accounting, batch
/// fan-out ([`Session::run_batch`](crate::Session::run_batch)) and
/// non-blocking submission ([`Session::submit`](crate::Session::submit)).
///
/// This trait is sealed; the implementors are [`CellRequest`],
/// [`LibraryRequest`], [`ImmunityRequest`], [`FlowRequest`], the
/// composite [`SweepRequest`] with its per-corner
/// [`SweepCornerRequest`], the uncached [`TranRequest`], and the
/// heterogeneous [`RequestKind`] wrapper.
///
/// [`cache_key`]: SessionRequest::cache_key
/// [`execute`]: SessionRequest::execute
pub trait SessionRequest: sealed::Sealed {
    /// What the request resolves to. Outputs are cloned out of the cache
    /// on every hit, so they are cheap handles ([`Arc`]-backed where the
    /// payload is large).
    type Output: Clone + Send + Sync + 'static;

    /// The complete memoization input of this request, or `None` when
    /// the request must not be cached under its own key (dispatch
    /// wrappers whose inner request memoizes itself). Requests that
    /// resolve session defaults (a [`CellRequest`] with `options: None`)
    /// fold the resolved defaults into the key, so implicit and explicit
    /// defaults share one entry.
    fn cache_key(&self, session: &Session) -> Option<CacheKey>;

    /// The miss path: performs the actual work. Runs outside the cache
    /// shard locks, single-flight per key — concurrent requests for the
    /// same key run one `execute`; the rest wait and hit.
    fn execute(&self, session: &Session) -> Result<Self::Output>;

    /// Post-cache touch-up applied to every result of
    /// [`Session::run`](crate::Session::run), with `cached` telling
    /// whether the value came from an earlier (or concurrent) build.
    /// The default keeps the output unchanged.
    fn annotate(output: Self::Output, cached: bool) -> Self::Output {
        let _ = cached;
        output
    }
}

// ---------------------------------------------------------------------------
// The four request kinds
// ---------------------------------------------------------------------------

impl sealed::Sealed for CellRequest {}

impl SessionRequest for CellRequest {
    type Output = CellResult;

    fn cache_key(&self, session: &Session) -> Option<CacheKey> {
        Some(CacheKey(KeyInner::Cell(session.catalog_key(self).0)))
    }

    fn execute(&self, session: &Session) -> Result<CellResult> {
        let opts = session.resolve_options(self);
        let strength = self.strength.max(1);
        let mut cell = if strength <= 1 {
            crate::core::generate_cell(self.kind, &opts)?
        } else {
            let (pdn, pun, vars) = dk::fingered_networks(self.kind, strength);
            let name = self
                .name
                .clone()
                .unwrap_or_else(|| CellLibrary::cell_name(self.kind, strength));
            generate_from_networks(name, self.kind, pdn, pun, vars, &opts)?
        };
        if let Some(name) = &self.name {
            cell.name = name.clone();
        }
        Ok(CellResult {
            cell: Arc::new(cell),
            cached: false,
        })
    }

    fn annotate(mut output: CellResult, cached: bool) -> CellResult {
        output.cached = cached;
        output
    }
}

impl sealed::Sealed for LibraryRequest {}

impl SessionRequest for LibraryRequest {
    type Output = Arc<CellLibrary>;

    fn cache_key(&self, _session: &Session) -> Option<CacheKey> {
        Some(CacheKey(KeyInner::Library(*self)))
    }

    /// Builds the full function × strength matrix of the session's kit,
    /// every layout drawn through the session's cell cache.
    fn execute(&self, session: &Session) -> Result<Arc<CellLibrary>> {
        let opts = dk::library_options(session.kit(), self.scheme);
        let built = dk::build_library_with(session.kit(), self.scheme, |kind, strength| {
            let req = CellRequest {
                kind,
                strength,
                options: Some(opts.clone()),
                name: Some(CellLibrary::cell_name(kind, strength)),
            };
            match session.run(&req) {
                Ok(result) => Ok(result.cell),
                Err(CnfetError::Generate(e)) => Err(e),
                Err(other) => {
                    unreachable!("cell generation only fails with GenerateError: {other}")
                }
            }
        })?;
        Ok(Arc::new(built))
    }
}

impl sealed::Sealed for ImmunityRequest {}

impl SessionRequest for ImmunityRequest {
    type Output = ImmunityReport;

    fn cache_key(&self, session: &Session) -> Option<CacheKey> {
        Some(CacheKey(KeyInner::Immunity {
            cell: session.catalog_key(&self.cell).0,
            engine: format!("{:?}", self.engine),
        }))
    }

    /// Generates (or recalls) the cell through the session, then runs the
    /// requested engine(s). The whole report is memoized, so repeating an
    /// analysis (certification or a deterministic seeded Monte-Carlo) is
    /// a pure immunity-cache hit that never touches the cell cache.
    fn execute(&self, session: &Session) -> Result<ImmunityReport> {
        let cell = session.run(&self.cell)?.cell;
        let (cert, mc) = match &self.engine {
            ImmunityEngine::Certify => (Some(certify(&cell.semantics)), None),
            ImmunityEngine::MonteCarlo(opts) => (None, Some(simulate(&cell.semantics, opts))),
            ImmunityEngine::Both(opts) => (
                Some(certify(&cell.semantics)),
                Some(simulate(&cell.semantics, opts)),
            ),
        };
        let immune =
            cert.as_ref().is_none_or(|c| c.immune) && mc.as_ref().is_none_or(|m| m.failures == 0);
        Ok(ImmunityReport {
            cell,
            immune,
            cert,
            mc,
        })
    }
}

impl sealed::Sealed for FlowRequest {}

impl SessionRequest for FlowRequest {
    type Output = FlowResult;

    fn cache_key(&self, _session: &Session) -> Option<CacheKey> {
        Some(CacheKey(KeyInner::Flow(format!("{self:?}"))))
    }

    /// Runs the flow end to end: netlist → placement → optional
    /// transistor-level simulation → optional GDSII, with the library
    /// build served from the session cache.
    fn execute(&self, session: &Session) -> Result<FlowResult> {
        let netlist = match &self.source {
            FlowSource::FullAdder => full_adder(),
            FlowSource::Verilog(src) => parse_verilog(src)?,
            FlowSource::Netlist(n) => n.clone(),
        };
        let scheme = match self.target {
            FlowTarget::Cnfet(scheme) => scheme,
            // The CMOS baseline derives its widths from the Scheme-1
            // CNFET library (identical λ rules).
            FlowTarget::Cmos => crate::core::Scheme::Scheme1,
        };
        let lib = session.run(&LibraryRequest::new(scheme))?;
        for inst in &netlist.instances {
            let name = CellLibrary::cell_name(inst.kind, inst.strength);
            if lib.cell(&name).is_none() {
                return Err(CnfetError::MissingCell(name));
            }
        }
        let placement = match self.target {
            FlowTarget::Cnfet(_) => place_cnfet_with(&netlist, &lib),
            FlowTarget::Cmos => place_cmos_with(session.kit(), &netlist, &lib),
        };
        let metrics = match &self.sim {
            Some(spec) => {
                let tech = match self.target {
                    FlowTarget::Cnfet(_) => Tech::Cnfet,
                    FlowTarget::Cmos => Tech::Cmos,
                };
                Some(simulate_netlist_with(
                    session.kit(),
                    &netlist,
                    &placement,
                    tech,
                    &spec.toggle_in,
                    &spec.ties,
                    &spec.watch_out,
                )?)
            }
            None => None,
        };
        let gds = if self.emit_gds && matches!(self.target, FlowTarget::Cnfet(_)) {
            Some(assemble_gds_with(&netlist.name, &placement, &lib))
        } else {
            None
        };
        Ok(FlowResult {
            netlist,
            placement,
            metrics,
            gds,
        })
    }
}

impl sealed::Sealed for TranRequest {}

impl SessionRequest for TranRequest {
    type Output = TranResult;

    /// `None`: transient runs are never memoized — waveforms are bulky
    /// one-shot payloads keyed by free-form deck text (see
    /// [`TranRequest`]).
    fn cache_key(&self, _session: &Session) -> Option<CacheKey> {
        None
    }

    /// Parses the deck, lowers it to MNA form, and integrates: one
    /// symbolic analysis, one factorization, pivot-order reuse across
    /// every timestep ([`crate::mna`]).
    fn execute(&self, _session: &Session) -> Result<TranResult> {
        let spec_err =
            |message: String| CnfetError::Deck(crate::spice::DeckError { line: 0, message });
        if !(self.dt > 0.0 && self.dt.is_finite()) {
            return Err(spec_err(format!(
                "tran dt must be positive and finite, got {:e}",
                self.dt
            )));
        }
        if !(self.t_stop > 0.0 && self.t_stop.is_finite()) {
            return Err(spec_err(format!(
                "tran t_stop must be positive and finite, got {:e}",
                self.t_stop
            )));
        }
        let circuit = crate::spice::Circuit::from_spice(&self.deck)?;
        let probes: Vec<(String, usize)> = if self.probes.is_empty() {
            (1..circuit.node_count())
                .map(|n| (circuit.node_name(crate::spice::Node(n)).to_string(), n))
                .collect()
        } else {
            self.probes
                .iter()
                .map(|name| {
                    circuit
                        .find_node(name)
                        .map(|node| (name.clone(), node.0))
                        .ok_or_else(|| spec_err(format!("unknown probe node `{name}`")))
                })
                .collect::<Result<_>>()?
        };
        let mna = crate::spice::to_mna(&circuit);
        let pattern = Arc::new(crate::mna::Pattern::analyze(&mna));
        let mut engine = crate::mna::Engine::new(pattern);
        let wave = engine
            .tran(&mna, &crate::mna::TranSpec::new(self.dt, self.t_stop))
            .map_err(crate::spice::SimError::from)?;
        Ok(TranResult {
            time: wave.time().to_vec(),
            probes: probes
                .into_iter()
                .map(|(name, n)| (name, wave.voltage(n).to_vec()))
                .collect(),
        })
    }
}

// ---------------------------------------------------------------------------
// Variation sweeps (composite requests)
// ---------------------------------------------------------------------------

impl sealed::Sealed for SweepRequest {}

impl SessionRequest for SweepRequest {
    type Output = Arc<SweepReport>;

    /// Whole-sweep memoization: cell keys are resolved against the
    /// session defaults (so implicit and explicit default options share
    /// one entry, exactly like direct cell requests), then combined with
    /// the **canonicalized** grid (`-0.0` folded to `0.0` — two
    /// semantically identical grids must never render distinct keys),
    /// the metric selection, MC base options and load list. A grid with
    /// an invalid float axis (NaN, infinite, negative) gets no key at
    /// all: `execute` rejects it, and an uncacheable request can neither
    /// poison a single-flight entry nor occupy a cache slot.
    fn cache_key(&self, session: &Session) -> Option<CacheKey> {
        if self.grid.validate("grid").is_err() {
            return None;
        }
        let cell_keys: Vec<CellKey> = self
            .cells
            .iter()
            .map(|cell| session.catalog_key(cell).0)
            .collect();
        Some(CacheKey(KeyInner::Sweep(format!(
            "{cell_keys:?}|{:?}|{:?}|{:?}|{:?}",
            self.grid.clone().canonical(),
            self.metrics,
            self.mc,
            self.loads_f
        ))))
    }

    /// Fans the corner × cell cross-product out through the session's
    /// job pool (one [`SweepCornerRequest`] per pair, each memoized in
    /// the [`RequestClass::Sweeps`] cache) and reduces the rows into a
    /// [`SweepReport`]. See [`crate::sweep`] for the full semantics,
    /// including how the executing thread helps drain the pool so a
    /// bounded worker set can never deadlock on the fan-out.
    fn execute(&self, session: &Session) -> Result<Arc<SweepReport>> {
        crate::sweep::execute_sweep(self, session)
    }
}

impl sealed::Sealed for SweepCornerRequest {}

impl SessionRequest for SweepCornerRequest {
    type Output = CornerRow;

    /// Per-corner memoization, keyed by the **canonical** corner (`-0.0`
    /// folded to `0.0`, exactly like the whole-sweep key). Invalid float
    /// fields (NaN, infinite, negative) yield no key — the corner
    /// executes uncached and `execute` rejects it.
    fn cache_key(&self, session: &Session) -> Option<CacheKey> {
        if self.corner.validate("corner").is_err() {
            return None;
        }
        let cell_key = session.catalog_key(&self.cell).0;
        Some(CacheKey(KeyInner::SweepCorner(format!(
            "{cell_key:?}|{:?}|{:?}|{:?}|{:?}",
            self.corner.canonical(),
            self.metrics,
            self.mc,
            self.loads_f
        ))))
    }

    fn execute(&self, session: &Session) -> Result<CornerRow> {
        crate::sweep::execute_corner(self, session)
    }
}

// ---------------------------------------------------------------------------
// Die repair (composite requests)
// ---------------------------------------------------------------------------

impl sealed::Sealed for RepairRequest {}

impl SessionRequest for RepairRequest {
    type Output = Arc<RepairReport>;

    /// Whole-lot memoization: cell keys are resolved against the session
    /// defaults (implicit and explicit defaults share one entry), then
    /// combined with the lot size, seed, spare count, process
    /// parameters, solver, and adjacency constraints. The attached
    /// [`DieObserver`](crate::DieObserver), if any, is deliberately
    /// excluded — observation is not identity.
    fn cache_key(&self, session: &Session) -> Option<CacheKey> {
        let cell_keys: Vec<CellKey> = self
            .cells
            .iter()
            .map(|cell| session.catalog_key(cell).0)
            .collect();
        Some(CacheKey(KeyInner::Repair(format!(
            "{cell_keys:?}|{}|{}|{}|{:?}|{:?}|{:?}",
            self.dies, self.base_seed, self.spares, self.params, self.solver, self.adjacent
        ))))
    }

    /// Fans one [`DieRequest`] per die out through the session's job
    /// pool (each memoized in the [`RequestClass::Repairs`] cache) and
    /// reduces the outcomes into a [`RepairReport`]. See
    /// [`crate::repair`] for the full semantics, including the
    /// batch-targeted helping rule that keeps the fan-out deadlock-free
    /// on a bounded worker set.
    fn execute(&self, session: &Session) -> Result<Arc<RepairReport>> {
        crate::repair::execute_repair(self, session)
    }
}

impl sealed::Sealed for DieRequest {}

impl SessionRequest for DieRequest {
    type Output = DieOutcome;

    /// Per-die memoization: keyed by the die *index* within the seeded
    /// stream, never by any surrounding lot's size — a lot that overlaps
    /// an earlier one re-executes only the dies it adds.
    fn cache_key(&self, session: &Session) -> Option<CacheKey> {
        let cell_keys: Vec<CellKey> = self
            .cells
            .iter()
            .map(|cell| session.catalog_key(cell).0)
            .collect();
        Some(CacheKey(KeyInner::Die(format!(
            "{cell_keys:?}|{}|{}|{}|{:?}|{:?}|{:?}",
            self.die, self.base_seed, self.spares, self.params, self.solver, self.adjacent
        ))))
    }

    fn execute(&self, session: &Session) -> Result<DieOutcome> {
        crate::repair::execute_die(self, session)
    }
}

// ---------------------------------------------------------------------------
// Processing↔circuit co-optimization (composite requests)
// ---------------------------------------------------------------------------

impl sealed::Sealed for OptimizeRequest {}

impl SessionRequest for OptimizeRequest {
    type Output = Arc<OptimizeReport>;

    /// Whole-trajectory memoization: resolved cell keys plus the
    /// **canonicalized** search grid, the target, the pass count, and the
    /// metric/MC/load configuration. An invalid request (NaN axis, empty
    /// schedule, zero passes) gets no key — `execute` rejects it before
    /// it can occupy a cache slot. The attached
    /// [`CandidateObserver`](crate::optimize::CandidateObserver), if
    /// any, is deliberately excluded — observation is not identity.
    fn cache_key(&self, session: &Session) -> Option<CacheKey> {
        if self.validate().is_err() {
            return None;
        }
        let cell_keys: Vec<CellKey> = self
            .cells
            .iter()
            .map(|cell| session.catalog_key(cell).0)
            .collect();
        Some(CacheKey(KeyInner::Optimize(format!(
            "{cell_keys:?}|{:?}|{:?}|{}|{:?}|{:?}|{:?}",
            self.grid.clone().canonical(),
            self.target.canonical(),
            self.passes,
            self.metrics,
            self.mc,
            self.loads_f
        ))))
    }

    /// Runs the coordinate-descent / successive-halving search: each
    /// round fans candidate sweeps through the session's job pool
    /// (batch-targeted helping, like every composite) and scores the
    /// memoized [`CandidateOutcome`]s against the target. See
    /// [`crate::optimize`] for the full schedule.
    fn execute(&self, session: &Session) -> Result<Arc<OptimizeReport>> {
        crate::optimize::execute_optimize(self, session)
    }
}

impl sealed::Sealed for OptimizeCandidateRequest {}

impl SessionRequest for OptimizeCandidateRequest {
    type Output = CandidateOutcome;

    /// Per-candidate memoization: resolved cell keys plus the
    /// candidate's **canonical** coordinates and the seed/metric/MC/load
    /// configuration — never any target, so a widened or re-targeted
    /// search replays every already-measured candidate as a pure
    /// `Optimizations`-class hit.
    fn cache_key(&self, session: &Session) -> Option<CacheKey> {
        if self.validate().is_err() {
            return None;
        }
        let cell_keys: Vec<CellKey> = self
            .cells
            .iter()
            .map(|cell| session.catalog_key(cell).0)
            .collect();
        let canonical = self.clone().canonical();
        Some(CacheKey(KeyInner::OptimizeCandidate(format!(
            "{cell_keys:?}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            canonical.tubes_per_4lambda,
            canonical.pitch_scale,
            canonical.metallic_fraction,
            canonical.seeds,
            canonical.metrics,
            canonical.mc,
            canonical.loads_f
        ))))
    }

    /// Reduces the candidate's (memoized) sweep into target-free
    /// aggregate measurements. The sweep itself is a pure hit whenever
    /// the surrounding optimizer already fanned it out.
    fn execute(&self, session: &Session) -> Result<CandidateOutcome> {
        crate::optimize::execute_candidate(self, session)
    }
}

// ---------------------------------------------------------------------------
// Hierarchical arithmetic macros (composite requests)
// ---------------------------------------------------------------------------

impl sealed::Sealed for MacroRequest {}

impl SessionRequest for MacroRequest {
    type Output = Arc<MacroReport>;

    /// Whole-macro memoization: kind, width, scheme, jitter seed. A
    /// request with an unsupported width gets no key — `execute` rejects
    /// it before it can occupy a cache slot. The attached
    /// [`SliceObserver`](crate::SliceObserver), if any, is deliberately
    /// excluded — observation is not identity.
    fn cache_key(&self, _session: &Session) -> Option<CacheKey> {
        if self.validate().is_err() {
            return None;
        }
        Some(CacheKey(KeyInner::Macro(format!(
            "{:?}|{}|{:?}|{}",
            self.kind, self.width, self.scheme, self.seed
        ))))
    }

    /// Fans one slice per bit through the session's job pool
    /// (batch-targeted helping, like every composite), then composes,
    /// places and assembles the two-deep hierarchy. See [`crate::macros`].
    fn execute(&self, session: &Session) -> Result<Arc<MacroReport>> {
        crate::macros::execute_macro(self, session)
    }
}

impl sealed::Sealed for MacroSliceRequest {}

impl SessionRequest for MacroSliceRequest {
    type Output = SliceOutcome;

    /// Per-slice memoization: the whole-macro rendering plus the bit
    /// index. Width stays in the key (a CLA bit's fan-out depends on
    /// it); cross-macro sharing happens one level down, in the `Cell`
    /// class the slice's sub-cell layouts memoize in.
    fn cache_key(&self, _session: &Session) -> Option<CacheKey> {
        Some(CacheKey(KeyInner::MacroSlice(format!(
            "{:?}|{}|{}|{:?}|{}",
            self.kind, self.width, self.bit, self.scheme, self.seed
        ))))
    }

    fn execute(&self, session: &Session) -> Result<SliceOutcome> {
        crate::macros::execute_slice(self, session)
    }
}

// ---------------------------------------------------------------------------
// Custom cells (explicit pull networks)
// ---------------------------------------------------------------------------

/// The request behind
/// [`Session::generate_custom`](crate::Session::generate_custom): a cell
/// from explicit pull networks, memoized like any catalog request.
#[derive(Clone, Debug)]
pub(crate) struct CustomCellRequest {
    pub(crate) name: String,
    pub(crate) pdn: crate::logic::SpNetwork,
    pub(crate) pun: crate::logic::SpNetwork,
    pub(crate) vars: crate::logic::VarTable,
    pub(crate) options: Option<crate::core::GenerateOptions>,
}

impl sealed::Sealed for CustomCellRequest {}

impl SessionRequest for CustomCellRequest {
    type Output = CellResult;

    fn cache_key(&self, session: &Session) -> Option<CacheKey> {
        let opts = self
            .options
            .clone()
            .unwrap_or_else(|| session.defaults().clone());
        Some(CacheKey(KeyInner::Cell(CellKey::Custom {
            name: self.name.clone(),
            pdn: self.pdn.clone(),
            pun: self.pun.clone(),
            var_names: self.vars.iter().map(|(_, n)| n.to_string()).collect(),
            opts,
        })))
    }

    fn execute(&self, session: &Session) -> Result<CellResult> {
        let opts = self
            .options
            .clone()
            .unwrap_or_else(|| session.defaults().clone());
        let cell = generate_from_networks(
            self.name.clone(),
            crate::core::StdCellKind::Inv,
            self.pdn.clone(),
            self.pun.clone(),
            self.vars.clone(),
            &opts,
        )?;
        Ok(CellResult {
            cell: Arc::new(cell),
            cached: false,
        })
    }

    fn annotate(mut output: CellResult, cached: bool) -> CellResult {
        output.cached = cached;
        output
    }
}

// ---------------------------------------------------------------------------
// Heterogeneous requests
// ---------------------------------------------------------------------------

/// Any one of the request kinds, for heterogeneous mixes: a list of
/// `RequestKind`s is what [`Session::submit_all`](crate::Session::submit_all)
/// fans out across the job pool. Dispatch is free of double caching —
/// the wrapper itself is never memoized; the inner request is, under its
/// own key, so a wrapped and an unwrapped request share one cache entry.
#[derive(Clone, Debug)]
pub enum RequestKind {
    /// A [`CellRequest`].
    Cell(CellRequest),
    /// A [`LibraryRequest`].
    Library(LibraryRequest),
    /// An [`ImmunityRequest`].
    Immunity(ImmunityRequest),
    /// A [`FlowRequest`].
    Flow(FlowRequest),
    /// A composite [`SweepRequest`] (itself fans out per-corner
    /// sub-requests on the same pool).
    Sweep(SweepRequest),
    /// One sweep corner ([`SweepCornerRequest`]) — the currency of a
    /// sweep's internal fan-out, also submittable directly.
    SweepCorner(SweepCornerRequest),
    /// A composite [`RepairRequest`] (fans out per-die sub-requests on
    /// the same pool).
    Repair(RepairRequest),
    /// One die's repair ([`DieRequest`]) — the currency of a repair
    /// lot's internal fan-out, also submittable directly.
    Die(DieRequest),
    /// A composite [`OptimizeRequest`]: a co-optimization search that
    /// fans candidate sweeps (themselves composites) out on the same
    /// pool — the deepest nesting the engine runs (optimize → sweeps →
    /// corners → cells).
    Optimize(OptimizeRequest),
    /// A composite [`MacroRequest`] (fans out per-bit-slice
    /// sub-requests on the same pool).
    Macro(MacroRequest),
    /// One bit slice ([`MacroSliceRequest`]) — the currency of a
    /// macro's internal fan-out, also submittable directly.
    MacroSlice(MacroSliceRequest),
    /// A deck transient run ([`TranRequest`]) — the one uncached kind:
    /// it belongs to no [`RequestClass`] and executes fresh every time.
    Tran(TranRequest),
}

impl RequestKind {
    /// The wrapped sweep, if this is a [`RequestKind::Sweep`]. Mutable so
    /// embedders can attach a
    /// [`RowObserver`](crate::sweep::RowObserver) to a sweep arriving as
    /// a heterogeneous submission (the serve tier's job streaming does
    /// exactly this before handing the mix to
    /// [`Session::submit_all`](crate::Session::submit_all)).
    pub fn as_sweep_mut(&mut self) -> Option<&mut SweepRequest> {
        match self {
            RequestKind::Sweep(r) => Some(r),
            _ => None,
        }
    }

    /// The wrapped repair lot, if this is a [`RequestKind::Repair`].
    /// Mutable for the same reason as [`RequestKind::as_sweep_mut`]: the
    /// serve tier attaches a [`DieObserver`](crate::DieObserver) to lots
    /// arriving as heterogeneous submissions before handing the mix to
    /// [`Session::submit_all`](crate::Session::submit_all).
    pub fn as_repair_mut(&mut self) -> Option<&mut RepairRequest> {
        match self {
            RequestKind::Repair(r) => Some(r),
            _ => None,
        }
    }

    /// The wrapped optimization, if this is a [`RequestKind::Optimize`].
    /// Mutable for the same reason as [`RequestKind::as_sweep_mut`]: the
    /// serve tier attaches a
    /// [`CandidateObserver`](crate::optimize::CandidateObserver) to
    /// searches arriving as heterogeneous submissions before handing the
    /// mix to [`Session::submit_all`](crate::Session::submit_all).
    pub fn as_optimize_mut(&mut self) -> Option<&mut OptimizeRequest> {
        match self {
            RequestKind::Optimize(r) => Some(r),
            _ => None,
        }
    }

    /// The wrapped macro, if this is a [`RequestKind::Macro`]. Mutable
    /// for the same reason as [`RequestKind::as_sweep_mut`]: the serve
    /// tier attaches a [`SliceObserver`](crate::SliceObserver) to macros
    /// arriving as heterogeneous submissions before handing the mix to
    /// [`Session::submit_all`](crate::Session::submit_all).
    pub fn as_macro_mut(&mut self) -> Option<&mut MacroRequest> {
        match self {
            RequestKind::Macro(r) => Some(r),
            _ => None,
        }
    }

    /// Which request class this wraps, or `None` for the uncached
    /// [`RequestKind::Tran`].
    pub fn class(&self) -> Option<RequestClass> {
        match self {
            RequestKind::Cell(_) => Some(RequestClass::Cell),
            RequestKind::Library(_) => Some(RequestClass::Library),
            RequestKind::Immunity(_) => Some(RequestClass::Immunity),
            RequestKind::Flow(_) => Some(RequestClass::Flow),
            RequestKind::Sweep(_) | RequestKind::SweepCorner(_) => Some(RequestClass::Sweeps),
            RequestKind::Repair(_) | RequestKind::Die(_) => Some(RequestClass::Repairs),
            RequestKind::Optimize(_) => Some(RequestClass::Optimizations),
            RequestKind::Macro(_) | RequestKind::MacroSlice(_) => Some(RequestClass::Macros),
            RequestKind::Tran(_) => None,
        }
    }
}

impl From<CellRequest> for RequestKind {
    fn from(r: CellRequest) -> RequestKind {
        RequestKind::Cell(r)
    }
}

impl From<LibraryRequest> for RequestKind {
    fn from(r: LibraryRequest) -> RequestKind {
        RequestKind::Library(r)
    }
}

impl From<ImmunityRequest> for RequestKind {
    fn from(r: ImmunityRequest) -> RequestKind {
        RequestKind::Immunity(r)
    }
}

impl From<FlowRequest> for RequestKind {
    fn from(r: FlowRequest) -> RequestKind {
        RequestKind::Flow(r)
    }
}

impl From<SweepRequest> for RequestKind {
    fn from(r: SweepRequest) -> RequestKind {
        RequestKind::Sweep(r)
    }
}

impl From<SweepCornerRequest> for RequestKind {
    fn from(r: SweepCornerRequest) -> RequestKind {
        RequestKind::SweepCorner(r)
    }
}

impl From<RepairRequest> for RequestKind {
    fn from(r: RepairRequest) -> RequestKind {
        RequestKind::Repair(r)
    }
}

impl From<DieRequest> for RequestKind {
    fn from(r: DieRequest) -> RequestKind {
        RequestKind::Die(r)
    }
}

impl From<OptimizeRequest> for RequestKind {
    fn from(r: OptimizeRequest) -> RequestKind {
        RequestKind::Optimize(r)
    }
}

impl From<MacroRequest> for RequestKind {
    fn from(r: MacroRequest) -> RequestKind {
        RequestKind::Macro(r)
    }
}

impl From<MacroSliceRequest> for RequestKind {
    fn from(r: MacroSliceRequest) -> RequestKind {
        RequestKind::MacroSlice(r)
    }
}

impl From<TranRequest> for RequestKind {
    fn from(r: TranRequest) -> RequestKind {
        RequestKind::Tran(r)
    }
}

/// The answer to a [`RequestKind`]: the matching result kind, one variant
/// per request kind.
#[derive(Clone, Debug)]
pub enum ResponseKind {
    /// Result of a [`RequestKind::Cell`].
    Cell(CellResult),
    /// Result of a [`RequestKind::Library`].
    Library(Arc<CellLibrary>),
    /// Result of a [`RequestKind::Immunity`].
    Immunity(ImmunityReport),
    /// Result of a [`RequestKind::Flow`].
    Flow(FlowResult),
    /// Result of a [`RequestKind::Sweep`].
    Sweep(Arc<SweepReport>),
    /// Result of a [`RequestKind::SweepCorner`].
    SweepCorner(CornerRow),
    /// Result of a [`RequestKind::Repair`].
    Repair(Arc<RepairReport>),
    /// Result of a [`RequestKind::Die`].
    Die(DieOutcome),
    /// Result of a [`RequestKind::Optimize`].
    Optimize(Arc<OptimizeReport>),
    /// Result of a [`RequestKind::Macro`].
    Macro(Arc<MacroReport>),
    /// Result of a [`RequestKind::MacroSlice`].
    MacroSlice(SliceOutcome),
    /// Result of a [`RequestKind::Tran`].
    Tran(TranResult),
}

impl ResponseKind {
    /// Which request class produced this response, or `None` for the
    /// uncached [`ResponseKind::Tran`].
    pub fn class(&self) -> Option<RequestClass> {
        match self {
            ResponseKind::Cell(_) => Some(RequestClass::Cell),
            ResponseKind::Library(_) => Some(RequestClass::Library),
            ResponseKind::Immunity(_) => Some(RequestClass::Immunity),
            ResponseKind::Flow(_) => Some(RequestClass::Flow),
            ResponseKind::Sweep(_) | ResponseKind::SweepCorner(_) => Some(RequestClass::Sweeps),
            ResponseKind::Repair(_) | ResponseKind::Die(_) => Some(RequestClass::Repairs),
            ResponseKind::Optimize(_) => Some(RequestClass::Optimizations),
            ResponseKind::Macro(_) | ResponseKind::MacroSlice(_) => Some(RequestClass::Macros),
            ResponseKind::Tran(_) => None,
        }
    }

    /// The cell result, if this is a [`ResponseKind::Cell`].
    pub fn into_cell(self) -> Option<CellResult> {
        match self {
            ResponseKind::Cell(r) => Some(r),
            _ => None,
        }
    }

    /// The library, if this is a [`ResponseKind::Library`].
    pub fn into_library(self) -> Option<Arc<CellLibrary>> {
        match self {
            ResponseKind::Library(r) => Some(r),
            _ => None,
        }
    }

    /// The immunity report, if this is a [`ResponseKind::Immunity`].
    pub fn into_immunity(self) -> Option<ImmunityReport> {
        match self {
            ResponseKind::Immunity(r) => Some(r),
            _ => None,
        }
    }

    /// The flow result, if this is a [`ResponseKind::Flow`].
    pub fn into_flow(self) -> Option<FlowResult> {
        match self {
            ResponseKind::Flow(r) => Some(r),
            _ => None,
        }
    }

    /// The sweep report, if this is a [`ResponseKind::Sweep`].
    pub fn into_sweep(self) -> Option<Arc<SweepReport>> {
        match self {
            ResponseKind::Sweep(r) => Some(r),
            _ => None,
        }
    }

    /// The corner row, if this is a [`ResponseKind::SweepCorner`].
    pub fn into_sweep_corner(self) -> Option<CornerRow> {
        match self {
            ResponseKind::SweepCorner(r) => Some(r),
            _ => None,
        }
    }

    /// The repair report, if this is a [`ResponseKind::Repair`].
    pub fn into_repair(self) -> Option<Arc<RepairReport>> {
        match self {
            ResponseKind::Repair(r) => Some(r),
            _ => None,
        }
    }

    /// The die outcome, if this is a [`ResponseKind::Die`].
    pub fn into_die(self) -> Option<DieOutcome> {
        match self {
            ResponseKind::Die(r) => Some(r),
            _ => None,
        }
    }

    /// The optimization report, if this is a [`ResponseKind::Optimize`].
    pub fn into_optimize(self) -> Option<Arc<OptimizeReport>> {
        match self {
            ResponseKind::Optimize(r) => Some(r),
            _ => None,
        }
    }

    /// The macro report, if this is a [`ResponseKind::Macro`].
    pub fn into_macro(self) -> Option<Arc<MacroReport>> {
        match self {
            ResponseKind::Macro(r) => Some(r),
            _ => None,
        }
    }

    /// The slice outcome, if this is a [`ResponseKind::MacroSlice`].
    pub fn into_macro_slice(self) -> Option<SliceOutcome> {
        match self {
            ResponseKind::MacroSlice(r) => Some(r),
            _ => None,
        }
    }

    /// The transient result, if this is a [`ResponseKind::Tran`].
    pub fn into_tran(self) -> Option<TranResult> {
        match self {
            ResponseKind::Tran(r) => Some(r),
            _ => None,
        }
    }
}

impl sealed::Sealed for RequestKind {}

impl SessionRequest for RequestKind {
    type Output = ResponseKind;

    /// `None`: the wrapper must not cache under its own key — the inner
    /// request memoizes itself, so wrapped and unwrapped requests share
    /// one entry (and one value type) per key.
    fn cache_key(&self, _session: &Session) -> Option<CacheKey> {
        None
    }

    fn execute(&self, session: &Session) -> Result<ResponseKind> {
        Ok(match self {
            RequestKind::Cell(r) => ResponseKind::Cell(session.run(r)?),
            RequestKind::Library(r) => ResponseKind::Library(session.run(r)?),
            RequestKind::Immunity(r) => ResponseKind::Immunity(session.run(r)?),
            RequestKind::Flow(r) => ResponseKind::Flow(session.run(r)?),
            RequestKind::Sweep(r) => ResponseKind::Sweep(session.run(r)?),
            RequestKind::SweepCorner(r) => ResponseKind::SweepCorner(session.run(r)?),
            RequestKind::Repair(r) => ResponseKind::Repair(session.run(r)?),
            RequestKind::Die(r) => ResponseKind::Die(session.run(r)?),
            RequestKind::Optimize(r) => ResponseKind::Optimize(session.run(r)?),
            RequestKind::Macro(r) => ResponseKind::Macro(session.run(r)?),
            RequestKind::MacroSlice(r) => ResponseKind::MacroSlice(session.run(r)?),
            RequestKind::Tran(r) => ResponseKind::Tran(session.run(r)?),
        })
    }
}
