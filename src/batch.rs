//! The work-stealing executor behind
//! [`Session::run_batch`](crate::Session::run_batch).
//!
//! The PR-1 batch path handed indices out of one atomic counter, which
//! balances *counts* but not *costs*: a worker that drew a heavy request
//! (a strength-9 complex gate) finishes long after workers that drew
//! cheap inverters have gone idle. This std-only executor uses the
//! classic shared-injector + per-worker-deque shape instead:
//!
//! * all task indices start in a shared **injector** queue;
//! * each worker refills its **local deque** with a small chunk from the
//!   injector and works through it front-to-back;
//! * a worker whose deque and the injector are both empty **steals** the
//!   back half of the fullest other deque, so a skewed tail of expensive
//!   tasks is redistributed instead of pinning one thread.
//!
//! A worker exits only once every task has been *claimed* (popped for
//! execution, tracked by a shared countdown) — finding all queues
//! momentarily empty is not enough, because stolen tasks are briefly in
//! transit between deques and must remain stealable by whichever worker
//! frees up first.
//!
//! The pop/refill/steal logic itself lives in [`crate::steal`], shared
//! with the persistent job pool behind `Session::submit`.

use crate::steal;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The results of a batch run plus executor telemetry.
#[derive(Debug)]
pub(crate) struct BatchOutcome<T> {
    /// One result per task, in task order.
    pub results: Vec<T>,
    /// Deque-to-deque steal operations performed (0 on an even workload).
    pub steals: u64,
}

/// Runs `task(0..tasks)` across `workers` threads with work stealing and
/// returns the results in task order. `workers` is clamped to `tasks`;
/// with fewer than two effective workers the tasks run inline.
pub(crate) fn run<T, F>(tasks: usize, workers: usize, task: F) -> BatchOutcome<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.min(tasks);
    if workers <= 1 {
        return BatchOutcome {
            results: (0..tasks).map(&task).collect(),
            steals: 0,
        };
    }

    let injector: Mutex<VecDeque<usize>> = Mutex::new((0..tasks).collect());
    let locals: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    let steals = AtomicU64::new(0);
    // Tasks not yet claimed for execution. Reaching 0 is the only exit
    // signal: an empty-queues observation can race with a steal in
    // transit, but a task in transit has not been claimed yet.
    let unclaimed = AtomicUsize::new(tasks);

    let mut results: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                let injector = &injector;
                let locals = &locals;
                let steals = &steals;
                let unclaimed = &unclaimed;
                let task = &task;
                scope.spawn(move || {
                    let mut done: Vec<(usize, T)> = Vec::new();
                    loop {
                        match steal::next_item(me, injector, locals, steals, || ()) {
                            Some(index) => {
                                unclaimed.fetch_sub(1, Ordering::Relaxed);
                                done.push((index, task(index)));
                            }
                            None if unclaimed.load(Ordering::Relaxed) == 0 => break,
                            // Unclaimed tasks exist but were momentarily
                            // invisible (in transit between deques, or
                            // queued behind a busy owner): retry.
                            None => std::thread::yield_now(),
                        }
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (index, result) in handle.join().expect("batch worker panicked") {
                results[index] = Some(result);
            }
        }
    });

    BatchOutcome {
        results: results
            .into_iter()
            .map(|slot| slot.expect("every task ran exactly once"))
            .collect(),
        steals: steals.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_keep_task_order() {
        let out = run(100, 4, |i| i * 2);
        assert_eq!(out.results, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        run(counts.len(), 8, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_worker_runs_inline() {
        let out = run(5, 1, |i| i);
        assert_eq!(out.results, vec![0, 1, 2, 3, 4]);
        assert_eq!(out.steals, 0);
    }

    #[test]
    fn zero_tasks() {
        let out = run(0, 8, |i| i);
        assert!(out.results.is_empty());
    }

    #[test]
    fn skewed_costs_are_stolen() {
        // One task sleeps; the cheap tail behind it in the same initial
        // chunk must get stolen by idle workers rather than waiting.
        let slow = 0usize;
        let out = run(64, 4, |i| {
            if i == slow {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            i
        });
        assert_eq!(out.results.len(), 64);
    }
}
