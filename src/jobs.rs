//! Non-blocking job submission: the persistent work-stealing pool behind
//! [`Session::submit`](crate::Session::submit) and the [`JobHandle`] it
//! returns.
//!
//! [`Session::run_batch`](crate::Session::run_batch) blocks until a whole
//! request list finishes; serving heavy heterogeneous traffic needs the
//! opposite shape — enqueue thousands of requests and harvest results as
//! they land. This std-only module provides it:
//!
//! * [`Pool`] — a lazily-started set of worker threads popping through
//!   the shared work-stealing core (`crate::steal`, the same injector +
//!   per-worker-deque + steal-from-the-fullest logic the batch executor
//!   uses), but persistent: workers park on a condvar when idle and live
//!   as long as the session.
//! * [`JobHandle`] — the caller's side of one submitted job: [`wait`],
//!   [`try_get`], [`wait_timeout`], [`is_done`]. Dropping a handle never
//!   cancels the job — the work still runs and still populates the
//!   session cache.
//! * [`Completion`] — the worker's side. It resolves the handle exactly
//!   once, *even when the job never runs*: if the job is dropped unrun
//!   (session shut down) or panics on a worker, the completion's `Drop`
//!   resolves the handle with [`CnfetError::Canceled`] instead of
//!   stranding a waiter.
//!
//! [`wait`]: JobHandle::wait
//! [`try_get`]: JobHandle::try_get
//! [`wait_timeout`]: JobHandle::wait_timeout
//! [`is_done`]: JobHandle::is_done

use crate::error::{CnfetError, Result};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A unit of work queued on the pool, tagged with the submission batch it
/// belongs to. The tag is what makes *targeted helping* safe: a composite
/// request draining the queue while it waits runs only jobs of its own
/// batch — never an arbitrary queued job, which could itself block on the
/// very single-flight claim the helper is holding (a re-entrant
/// deadlock).
pub(crate) struct Job {
    /// Batch the job was submitted under ([`UNBATCHED`] for solo
    /// submissions).
    pub(crate) batch: u64,
    /// The work itself.
    pub(crate) run: Box<dyn FnOnce() + Send>,
}

/// Batch tag of jobs submitted outside any batch.
pub(crate) const UNBATCHED: u64 = 0;

/// Allocates a fresh nonzero batch id (process-global, so ids never
/// collide across sessions).
pub(crate) fn next_batch_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Job handles
// ---------------------------------------------------------------------------

/// One job's result slot, shared between its [`JobHandle`] and its
/// [`Completion`].
#[derive(Debug)]
enum Slot<T> {
    /// The job has not resolved yet.
    Pending,
    /// The job resolved; the result awaits collection.
    Ready(Result<T>),
    /// The result was collected (by `try_get`/`wait_timeout`/`wait`).
    Taken,
}

#[derive(Debug)]
struct JobState<T> {
    slot: Mutex<Slot<T>>,
    done: Condvar,
}

impl<T> JobState<T> {
    /// Resolves the slot exactly once; later fills are ignored.
    fn fill(&self, result: Result<T>) {
        let mut slot = self.slot.lock().expect("job slot lock");
        if matches!(*slot, Slot::Pending) {
            *slot = Slot::Ready(result);
        }
        drop(slot);
        self.done.notify_all();
    }
}

/// The caller's side of one job submitted with
/// [`Session::submit`](crate::Session::submit): a non-blocking future for
/// the request's output.
///
/// The result is collected **exactly once** — by [`wait`](Self::wait),
/// or by the first [`try_get`](Self::try_get) /
/// [`wait_timeout`](Self::wait_timeout) that returns `Some`. Dropping the
/// handle abandons the result but not the job: the work still runs and
/// still populates the session cache for later requests.
#[derive(Debug)]
pub struct JobHandle<T> {
    state: Arc<JobState<T>>,
}

impl<T> JobHandle<T> {
    /// Whether the job has resolved (successfully, with an error, or
    /// canceled). Non-blocking.
    pub fn is_done(&self) -> bool {
        !matches!(
            *self.state.slot.lock().expect("job slot lock"),
            Slot::Pending
        )
    }

    /// Collects the result if the job has resolved; `None` while it is
    /// still pending (or if the result was already collected).
    /// Non-blocking.
    pub fn try_get(&mut self) -> Option<Result<T>> {
        take(&mut self.state.slot.lock().expect("job slot lock"))
    }

    /// Blocks until the job resolves and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the result was already collected by an earlier
    /// [`try_get`](Self::try_get) or [`wait_timeout`](Self::wait_timeout).
    pub fn wait(self) -> Result<T> {
        let mut slot = self.state.slot.lock().expect("job slot lock");
        loop {
            if matches!(*slot, Slot::Pending) {
                slot = self.state.done.wait(slot).expect("job slot lock");
                continue;
            }
            return take(&mut slot).expect("job result was already collected");
        }
    }

    /// Blocks for at most `timeout` for the job to resolve. Returns the
    /// result, or `None` if the timeout expired first (the handle stays
    /// valid — wait again or poll later). Also returns `None` if the
    /// result was already collected.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Option<Result<T>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.state.slot.lock().expect("job slot lock");
        loop {
            if !matches!(*slot, Slot::Pending) {
                return take(&mut slot);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timed_out) = self
                .state
                .done
                .wait_timeout(slot, deadline - now)
                .expect("job slot lock");
            slot = guard;
        }
    }
}

/// Moves a `Ready` result out of the slot, leaving `Taken`.
fn take<T>(slot: &mut Slot<T>) -> Option<Result<T>> {
    if matches!(*slot, Slot::Ready(_)) {
        match std::mem::replace(slot, Slot::Taken) {
            Slot::Ready(result) => Some(result),
            _ => unreachable!("just matched Ready"),
        }
    } else {
        None
    }
}

/// The worker's side of one job: resolves the paired [`JobHandle`]
/// exactly once. If dropped unresolved — the job was discarded unrun at
/// session shutdown, or the request panicked — the handle resolves to
/// [`CnfetError::Canceled`] so no waiter is ever stranded.
#[derive(Debug)]
pub(crate) struct Completion<T> {
    state: Option<Arc<JobState<T>>>,
}

impl<T> Completion<T> {
    /// Resolves the handle with the job's outcome.
    pub(crate) fn complete(mut self, result: Result<T>) {
        if let Some(state) = self.state.take() {
            state.fill(result);
        }
    }
}

impl<T> Drop for Completion<T> {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            state.fill(Err(CnfetError::Canceled));
        }
    }
}

/// A fresh completion/handle pair for one job.
pub(crate) fn job_channel<T>() -> (Completion<T>, JobHandle<T>) {
    let state = Arc::new(JobState {
        slot: Mutex::new(Slot::Pending),
        done: Condvar::new(),
    });
    (
        Completion {
            state: Some(state.clone()),
        },
        JobHandle { state },
    )
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

/// Backstop interval after which a parked worker rescans for stealable
/// work. Wakeups are event-driven — submissions and steal/refill residue
/// notify the condvar, and a worker scans every deque before parking —
/// so this only papers over the one unsynchronized window (items in
/// transit between deques at the exact park instant) and can be long.
const IDLE_RESCAN: Duration = Duration::from_millis(250);

struct PoolShared {
    injector: Mutex<VecDeque<Job>>,
    available: Condvar,
    locals: Vec<Mutex<VecDeque<Job>>>,
    steals: AtomicU64,
    shutdown: AtomicBool,
}

/// The persistent work-stealing executor of a session's submitted jobs.
/// Started lazily on the first `submit`; shut down (draining the queue as
/// cancellations) when the session's last handle drops.
pub(crate) struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers.len())
            .field("steals", &self.steals())
            .finish()
    }
}

impl Pool {
    /// Starts `workers` (at least one) parked worker threads.
    pub(crate) fn new(workers: usize) -> Pool {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            injector: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            steals: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|me| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("cnfet-pool-{me}"))
                    .spawn(move || worker(&shared, me))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            workers: handles,
        }
    }

    /// Enqueues one job and wakes a parked worker.
    pub(crate) fn submit(&self, job: Job) {
        self.shared
            .injector
            .lock()
            .expect("pool injector lock")
            .push_back(job);
        self.shared.available.notify_one();
    }

    /// Enqueues a batch under one injector lock and wakes every parked
    /// worker, so a heterogeneous fan-out starts on all threads at once.
    pub(crate) fn submit_many(&self, jobs: impl IntoIterator<Item = Job>) {
        self.shared
            .injector
            .lock()
            .expect("pool injector lock")
            .extend(jobs);
        self.shared.available.notify_all();
    }

    /// Deque-to-deque steal operations performed so far.
    pub(crate) fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Runs **one** queued job *of the given batch* on the calling
    /// thread, if any is immediately available: the injector is scanned
    /// front to back, then every worker deque back to front. Returns
    /// whether a job ran.
    ///
    /// This is the deadlock escape hatch for *composite* requests — a
    /// request whose `execute` submits a batch of sub-requests onto the
    /// same pool and waits for them. On a bounded worker set the
    /// executing worker would otherwise park forever on handles nobody
    /// is left to serve; instead it calls this in its wait loop and
    /// drains its own batch itself. Helping is restricted to that batch
    /// on purpose: an arbitrary queued job (say, a second copy of the
    /// same composite) can block on the single-flight claim the helping
    /// thread currently holds, which would deadlock the helper on
    /// itself. Sub-requests only ever wait *downward* (corners on cells,
    /// never on sweeps), so batch-targeted helping cannot cycle.
    /// Panicking jobs are contained exactly as on a worker (the job's
    /// `Completion` cancels its handle while unwinding).
    pub(crate) fn help_run_one(&self, batch: u64) -> bool {
        // Injector: FIFO, take the frontmost matching job. Worker
        // deques: take the hindmost, steal-style, so the helper contends
        // with the owning worker's `pop_front` as little as possible.
        let take_front = |queue: &Mutex<VecDeque<Job>>| -> Option<Job> {
            let mut queue = queue.lock().expect("pool queue lock");
            let at = queue.iter().position(|job| job.batch == batch)?;
            queue.remove(at)
        };
        let take_back = |queue: &Mutex<VecDeque<Job>>| -> Option<Job> {
            let mut queue = queue.lock().expect("pool queue lock");
            let at = queue.iter().rposition(|job| job.batch == batch)?;
            queue.remove(at)
        };
        let mut job = take_front(&self.shared.injector);
        if job.is_none() {
            // The batch's jobs may have been chunk-refilled or stolen
            // into a worker deque whose owner is itself blocked helping
            // a composite — their queued tails must stay reachable.
            for local in &self.shared.locals {
                job = take_back(local);
                if job.is_some() {
                    self.shared.steals.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
        match job {
            Some(job) => {
                let _ = catch_unwind(AssertUnwindSafe(job.run));
                true
            }
            None => false,
        }
    }
}

impl Drop for Pool {
    /// Signals shutdown and joins the workers. Jobs still queued are
    /// popped by the draining workers, whose session upgrade fails, so
    /// every outstanding [`JobHandle`] resolves to
    /// [`CnfetError::Canceled`] rather than hanging.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Lock-and-release before notifying: a worker between its
        // shutdown check and its park holds the injector lock, so this
        // handshake guarantees it is either not yet parked (and will see
        // the flag) or parked (and receives the notification).
        drop(self.shared.injector.lock().expect("pool injector lock"));
        self.shared.available.notify_all();
        let current = std::thread::current().id();
        for handle in self.workers.drain(..) {
            // A job holding the last live reference to its session drops
            // the pool from inside a worker thread; joining that thread
            // from itself would deadlock — detach it instead (it exits on
            // its own once it observes the shutdown flag).
            if handle.thread().id() == current {
                continue;
            }
            let _ = handle.join();
        }
    }
}

/// One worker: run everything reachable through the shared steal core
/// ([`crate::steal`]: local deque → injector chunk → steal-from-the-
/// fullest), then park until new work or shutdown. Refill/steal residue
/// notifies the condvar so parked peers wake to steal it.
fn worker(shared: &PoolShared, me: usize) {
    loop {
        while let Some(job) =
            crate::steal::next_item(me, &shared.injector, &shared.locals, &shared.steals, || {
                shared.available.notify_all()
            })
        {
            // A panicking request must not kill the worker; the job's
            // Completion resolves the handle to Canceled while unwinding.
            let _ = catch_unwind(AssertUnwindSafe(job.run));
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let queue = shared.injector.lock().expect("pool injector lock");
        // Park only if there is truly nothing anywhere. Residue is
        // pushed under the injector lock (refill) or notified after the
        // push (steal), so scanning the deques while holding the
        // injector lock closes the lost-wakeup races; IDLE_RESCAN
        // backstops the remaining in-transit window.
        let nothing_to_do = queue.is_empty()
            && !shared.shutdown.load(Ordering::Acquire)
            && shared
                .locals
                .iter()
                .all(|local| local.lock().expect("local deque lock").is_empty());
        if nothing_to_do {
            let _ = shared
                .available
                .wait_timeout(queue, IDLE_RESCAN)
                .expect("pool injector lock");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// An unbatched test job.
    fn job(run: impl FnOnce() + Send + 'static) -> Job {
        Job {
            batch: UNBATCHED,
            run: Box::new(run),
        }
    }

    #[test]
    fn jobs_resolve_handles() {
        let pool = Pool::new(2);
        let handles: Vec<_> = (0..32)
            .map(|i| {
                let (completion, handle) = job_channel::<usize>();
                pool.submit(job(move || completion.complete(Ok(i * 2))));
                handle
            })
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            assert_eq!(handle.wait().unwrap(), i * 2);
        }
    }

    #[test]
    fn dropped_unrun_jobs_cancel_their_handles() {
        let (completion, handle) = job_channel::<u32>();
        let unrun = job(move || completion.complete(Ok(1)));
        drop(unrun);
        assert!(matches!(handle.wait(), Err(CnfetError::Canceled)));
    }

    #[test]
    fn panicking_job_cancels_instead_of_stranding() {
        let pool = Pool::new(1);
        let (completion, handle) = job_channel::<u32>();
        pool.submit(job(move || {
            let _keep = &completion;
            panic!("request blew up");
        }));
        assert!(matches!(handle.wait(), Err(CnfetError::Canceled)));
        // The worker survived the panic and still serves jobs.
        let (completion, handle) = job_channel::<u32>();
        pool.submit(job(move || completion.complete(Ok(7))));
        assert_eq!(handle.wait().unwrap(), 7);
    }

    #[test]
    fn try_get_and_timeout_semantics() {
        let pool = Pool::new(1);
        let gate = Arc::new(AtomicUsize::new(0));
        let (completion, mut handle) = job_channel::<u32>();
        let worker_gate = gate.clone();
        pool.submit(job(move || {
            while worker_gate.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
            completion.complete(Ok(42));
        }));
        assert!(!handle.is_done());
        assert!(handle.try_get().is_none(), "pending → None");
        assert!(
            handle.wait_timeout(Duration::from_millis(5)).is_none(),
            "timeout expires while the job is gated"
        );
        gate.store(1, Ordering::Release);
        assert_eq!(
            handle
                .wait_timeout(Duration::from_secs(30))
                .expect("resolves once released")
                .unwrap(),
            42
        );
        assert!(handle.is_done());
        assert!(handle.try_get().is_none(), "result collected exactly once");
    }

    #[test]
    fn help_run_one_drains_only_its_batch() {
        // Gate the single worker on a job, queue a batch plus a foreign
        // job behind it, and drain from this thread via help_run_one —
        // the shape a composite request relies on. Only the targeted
        // batch may run; the foreign job must stay queued.
        let pool = Pool::new(1);
        let gate = Arc::new(AtomicUsize::new(0));
        let worker_gate = gate.clone();
        let (running, running_handle) = job_channel::<u32>();
        let started = Arc::new(AtomicUsize::new(0));
        let started_flag = started.clone();
        pool.submit(job(move || {
            started_flag.store(1, Ordering::Release);
            while worker_gate.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
            running.complete(Ok(0));
        }));
        while started.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        let batch = next_batch_id();
        let (foreign_completion, mut foreign) = job_channel::<u32>();
        pool.submit(job(move || foreign_completion.complete(Ok(99))));
        let handles: Vec<_> = (1..=4u32)
            .map(|i| {
                let (completion, handle) = job_channel::<u32>();
                pool.submit(Job {
                    batch,
                    run: Box::new(move || completion.complete(Ok(i))),
                });
                handle
            })
            .collect();
        let mut ran = 0;
        while pool.help_run_one(batch) {
            ran += 1;
        }
        assert_eq!(ran, 4, "helper drained exactly its batch");
        for (i, handle) in handles.into_iter().enumerate() {
            assert_eq!(handle.wait().unwrap(), i as u32 + 1);
        }
        assert!(
            foreign.try_get().is_none(),
            "the foreign job was not helped"
        );
        gate.store(1, Ordering::Release);
        assert_eq!(running_handle.wait().unwrap(), 0);
        assert_eq!(
            foreign
                .wait_timeout(Duration::from_secs(60))
                .unwrap()
                .unwrap(),
            99
        );
        assert!(!pool.help_run_one(batch), "nothing left to help with");
    }

    #[test]
    fn pool_drop_cancels_queued_jobs() {
        let pool = Pool::new(1);
        let gate = Arc::new(AtomicUsize::new(0));
        let worker_gate = gate.clone();
        let (running, running_handle) = job_channel::<u32>();
        let started = Arc::new(AtomicUsize::new(0));
        let started_flag = started.clone();
        pool.submit(job(move || {
            started_flag.store(1, Ordering::Release);
            while worker_gate.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
            running.complete(Ok(1));
        }));
        while started.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        // Queued behind the gated job; the pool drops before it runs.
        let (queued, queued_handle) = job_channel::<u32>();
        pool.submit(job(move || queued.complete(Ok(2))));
        gate.store(1, Ordering::Release);
        drop(pool);
        assert_eq!(running_handle.wait().unwrap(), 1, "in-flight job finished");
        // The queued job either ran before shutdown was observed or was
        // discarded and canceled — it must resolve either way.
        match queued_handle.wait() {
            Ok(2) | Err(CnfetError::Canceled) => {}
            other => panic!("queued job resolved unexpectedly: {other:?}"),
        }
    }
}
