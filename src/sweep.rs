//! Variation-aware characterization sweeps: the paper's cells, re-judged
//! across a process-variation grid, as one first-class
//! [`SessionRequest`](crate::SessionRequest).
//!
//! The compact imperfection-immune layouts only pay off if their delay,
//! energy, and immunity hold up when the CNT process moves — fewer grown
//! tubes, tubes bunched tighter than drawn, a residue of surviving
//! metallic tubes (the processing/circuit co-optimization loop of Hills
//! et al., and the fault-coverage framing of Lu et al.). A
//! [`SweepRequest`] names a cell set, a [`VariationGrid`] (tube count ×
//! pitch spread × metallic fraction × seed), and a [`SweepMetrics`]
//! selection; the session answers with a [`SweepReport`]: one
//! [`CornerRow`] per cell × corner, the delay/energy/yield Pareto
//! frontier, and best/worst-corner summaries.
//!
//! # Composite execution
//!
//! `SweepRequest` is the engine's first *composite* request: its
//! `execute` fans the corner × cell cross-product out through
//! [`Session::submit_all`] — one [`SweepCornerRequest`] per pair, each
//! memoized in the [`RequestClass::Sweeps`](crate::RequestClass::Sweeps)
//! cache — and reduces the rows as the handles land. Because the fan-out
//! rides the *same* persistent pool the sweep itself may be executing
//! on, the executing thread never parks on a pending handle while the
//! queue is non-empty: it pops and runs queued jobs itself (the pool's
//! helping protocol), so even a one-worker pool completes arbitrarily
//! nested fan-outs instead of deadlocking.
//!
//! Memoization works at both granularities: a repeated sweep is one pure
//! `Sweeps`-class hit (the report is never re-reduced), and a *new*
//! sweep that overlaps an earlier one re-uses every memoized corner row
//! and only executes the corners it adds.
//!
//! # Example
//!
//! ```
//! use cnfet::core::StdCellKind;
//! use cnfet::immunity::McOptions;
//! use cnfet::{Session, SweepMetrics, SweepRequest, VariationGrid};
//!
//! let session = Session::new();
//! let request = SweepRequest::new([StdCellKind::Inv, StdCellKind::Nand(2)])
//!     .grid(
//!         VariationGrid::nominal()
//!             .tube_counts([26, 10])
//!             .metallic_fractions([0.0, 0.02]),
//!     )
//!     .metrics(SweepMetrics::IMMUNITY)
//!     .mc(McOptions {
//!         tubes: 200,
//!         ..McOptions::default()
//!     });
//!
//! let report = session.run(&request)?;
//! assert_eq!(report.rows.len(), 2 * 4, "2 cells × 4 corners");
//! // The clean corner of an immune cell yields 100%.
//! assert_eq!(report.row(0, 0).yield_frac(), Some(1.0));
//! // Repeating the sweep is a pure Sweeps-class cache hit.
//! let again = session.run(&request)?;
//! assert!(std::sync::Arc::ptr_eq(&report, &again));
//! # Ok::<(), cnfet::CnfetError>(())
//! ```
//!
//! [`Session::submit_all`]: crate::Session::submit_all

use crate::dk::{CharCorner, LibCell, TimingTable};
use crate::error::Result;
use crate::immunity::{metallic_yield, simulate, McOptions, MetallicProcess};
use crate::request::RequestKind;
use crate::session::{CellRequest, Session};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// The variation grid
// ---------------------------------------------------------------------------

/// One point of a [`VariationGrid`]: a concrete CNT process corner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VariationCorner {
    /// CNTs grown per 4λ of device width (count/density variation).
    pub tubes_per_4lambda: u32,
    /// Multiplier on the effective inter-CNT pitch seen by the screening
    /// model (placement-spread variation); `1.0` is evenly pitched.
    pub pitch_scale: f64,
    /// Fraction of tube sites that end up as *surviving metallic* tubes
    /// (grown metallic and missed by removal); `0.0` is the paper's
    /// perfect-removal assumption.
    pub metallic_fraction: f64,
    /// Monte-Carlo seed used at this corner.
    pub seed: u64,
}

impl VariationCorner {
    /// The paper's nominal 65 nm corner: 26 tubes per 4λ at even pitch,
    /// perfect metallic removal, the default MC seed.
    pub fn nominal() -> VariationCorner {
        VariationCorner {
            tubes_per_4lambda: 26,
            pitch_scale: 1.0,
            metallic_fraction: 0.0,
            seed: McOptions::default().seed,
        }
    }

    /// The corner with its float fields in canonical form (`-0.0`
    /// normalized to `0.0`). Cache keys render the canonical corner, so
    /// two semantically identical corners that differ only in float sign
    /// bits share one cache entry.
    #[must_use]
    pub fn canonical(mut self) -> VariationCorner {
        self.pitch_scale = canonical_axis_value(self.pitch_scale);
        self.metallic_fraction = canonical_axis_value(self.metallic_fraction);
        self
    }

    /// Checks the corner's float fields are finite and non-negative.
    /// `prefix` names the corner in the reported field path (e.g.
    /// `corner`).
    ///
    /// # Errors
    ///
    /// [`CnfetError::InvalidRequest`](crate::CnfetError::InvalidRequest)
    /// naming the offending field.
    pub fn validate(&self, prefix: &str) -> Result<()> {
        check_axis_value(self.pitch_scale, || format!("{prefix}.pitch_scale"))?;
        check_axis_value(self.metallic_fraction, || {
            format!("{prefix}.metallic_fraction")
        })
    }
}

/// Normalizes one float axis value: `-0.0` becomes `0.0` (the two
/// compare equal but `Debug`-render differently, and cache keys are
/// rendered). Other values — including the invalid ones `validate`
/// rejects — pass through untouched.
pub(crate) fn canonical_axis_value(value: f64) -> f64 {
    if value == 0.0 {
        0.0
    } else {
        value
    }
}

/// Rejects NaN, infinite, and negative float axis values with a
/// field-path [`CnfetError::InvalidRequest`](crate::CnfetError::InvalidRequest).
/// `-0.0` is accepted (it
/// *is* zero); `canonical_axis_value` folds it before any key render.
pub(crate) fn check_axis_value(value: f64, field: impl FnOnce() -> String) -> Result<()> {
    if !value.is_finite() || value < 0.0 {
        return Err(crate::CnfetError::InvalidRequest {
            field: field(),
            message: format!("expected a finite non-negative number, got {value}"),
        });
    }
    Ok(())
}

/// A cross-product variation grid: every combination of the four axes is
/// one [`VariationCorner`]. Axes left at their [`nominal`] single value
/// do not multiply the corner count.
///
/// [`nominal`]: VariationGrid::nominal
#[derive(Clone, Debug, PartialEq)]
pub struct VariationGrid {
    /// Tube-count axis (CNTs per 4λ).
    pub tube_counts: Vec<u32>,
    /// Pitch-spread axis (effective-pitch multipliers).
    pub pitch_scales: Vec<f64>,
    /// Surviving-metallic-fraction axis.
    pub metallic_fractions: Vec<f64>,
    /// Seed axis (one deterministic MC stream per seed).
    pub seeds: Vec<u64>,
}

impl VariationGrid {
    /// The single nominal corner ([`VariationCorner::nominal`]).
    pub fn nominal() -> VariationGrid {
        let n = VariationCorner::nominal();
        VariationGrid {
            tube_counts: vec![n.tubes_per_4lambda],
            pitch_scales: vec![n.pitch_scale],
            metallic_fractions: vec![n.metallic_fraction],
            seeds: vec![n.seed],
        }
    }

    /// Replaces the tube-count axis.
    #[must_use]
    pub fn tube_counts(mut self, counts: impl IntoIterator<Item = u32>) -> VariationGrid {
        self.tube_counts = counts.into_iter().collect();
        self
    }

    /// Replaces the pitch-spread axis.
    #[must_use]
    pub fn pitch_scales(mut self, scales: impl IntoIterator<Item = f64>) -> VariationGrid {
        self.pitch_scales = scales.into_iter().collect();
        self
    }

    /// Replaces the metallic-fraction axis.
    #[must_use]
    pub fn metallic_fractions(mut self, fractions: impl IntoIterator<Item = f64>) -> VariationGrid {
        self.metallic_fractions = fractions.into_iter().collect();
        self
    }

    /// Replaces the seed axis.
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> VariationGrid {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Number of corners (the product of the axis lengths).
    pub fn len(&self) -> usize {
        self.tube_counts.len()
            * self.pitch_scales.len()
            * self.metallic_fractions.len()
            * self.seeds.len()
    }

    /// Whether the grid has no corners (some axis is empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The grid with both float axes in canonical form (`-0.0` normalized
    /// to `0.0`). Cache keys render the canonical grid — see
    /// [`VariationCorner::canonical`].
    #[must_use]
    pub fn canonical(mut self) -> VariationGrid {
        for scale in &mut self.pitch_scales {
            *scale = canonical_axis_value(*scale);
        }
        for fraction in &mut self.metallic_fractions {
            *fraction = canonical_axis_value(*fraction);
        }
        self
    }

    /// Checks every float axis value is finite and non-negative. `prefix`
    /// names the grid in the reported field path (e.g. `grid`).
    ///
    /// # Errors
    ///
    /// [`CnfetError::InvalidRequest`](crate::CnfetError::InvalidRequest)
    /// naming the offending axis entry,
    /// e.g. `grid.metallic_fractions[1]`.
    pub fn validate(&self, prefix: &str) -> Result<()> {
        for (i, &scale) in self.pitch_scales.iter().enumerate() {
            check_axis_value(scale, || format!("{prefix}.pitch_scales[{i}]"))?;
        }
        for (i, &fraction) in self.metallic_fractions.iter().enumerate() {
            check_axis_value(fraction, || format!("{prefix}.metallic_fractions[{i}]"))?;
        }
        Ok(())
    }

    /// Every corner of the grid in canonical order: tube count outermost,
    /// then pitch, metallic fraction, and seed innermost. The order is
    /// part of the [`SweepReport`] contract — `rows` is cell-major over
    /// this sequence.
    pub fn corners(&self) -> Vec<VariationCorner> {
        let mut corners = Vec::with_capacity(self.len());
        for &tubes_per_4lambda in &self.tube_counts {
            for &pitch_scale in &self.pitch_scales {
                for &metallic_fraction in &self.metallic_fractions {
                    for &seed in &self.seeds {
                        corners.push(VariationCorner {
                            tubes_per_4lambda,
                            pitch_scale,
                            metallic_fraction,
                            seed,
                        });
                    }
                }
            }
        }
        corners
    }
}

impl Default for VariationGrid {
    fn default() -> Self {
        VariationGrid::nominal()
    }
}

// ---------------------------------------------------------------------------
// Metric selection
// ---------------------------------------------------------------------------

/// Which metrics a sweep evaluates per corner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepMetrics {
    /// Monte-Carlo immunity yield ([`crate::immunity::mc`]) plus the
    /// analytic surviving-metallic yield over the cell's tube sites.
    pub immunity: bool,
    /// Propagation delay and switching energy via the in-repo transient
    /// engine ([`crate::dk::characterize_cell_at`]).
    pub timing: bool,
    /// Liberty-style NLDM characterization: the full load-indexed
    /// [`TimingTable`] plus a rendered liberty `cell` group per row.
    pub liberty: bool,
    /// Keep the nominal-load transient waveform of each characterized
    /// row as a rendered `time in out i(vdd)` table
    /// ([`CornerRow::waveform`]). Off in every preset — waveforms are
    /// bulky, and most sweeps only want the scalar measures; flip it on
    /// with [`SweepMetrics::with_waveforms`] for debugging or plotting.
    pub retain_waveforms: bool,
}

impl SweepMetrics {
    /// Everything: immunity + timing + liberty (no waveform retention).
    pub const ALL: SweepMetrics = SweepMetrics {
        immunity: true,
        timing: true,
        liberty: true,
        retain_waveforms: false,
    };

    /// Immunity yield only (no transient simulation).
    pub const IMMUNITY: SweepMetrics = SweepMetrics {
        immunity: true,
        timing: false,
        liberty: false,
        retain_waveforms: false,
    };

    /// Delay + energy only.
    pub const TIMING: SweepMetrics = SweepMetrics {
        immunity: false,
        timing: true,
        liberty: false,
        retain_waveforms: false,
    };

    /// The same selection with waveform retention switched on.
    #[must_use]
    pub const fn with_waveforms(mut self) -> SweepMetrics {
        self.retain_waveforms = true;
        self
    }

    /// Whether any metric requires the transient characterization.
    pub(crate) fn needs_characterization(&self) -> bool {
        self.timing || self.liberty
    }
}

impl Default for SweepMetrics {
    fn default() -> Self {
        SweepMetrics::ALL
    }
}

// ---------------------------------------------------------------------------
// Row observation
// ---------------------------------------------------------------------------

/// A callback invoked with each harvested [`CornerRow`] of an executing
/// sweep, in row order (cell-major over the canonical corner sequence —
/// exactly the order of [`SweepReport::rows`]). This is the hook
/// incremental-delivery front ends (the `cnfet-serve` job streaming
/// endpoint) use to flush rows as corners complete instead of waiting
/// for the whole report.
///
/// The observer is **not** part of the sweep's identity: it is excluded
/// from the cache key, so an observed and an unobserved sweep share one
/// memoized report. Consequently the observer only fires when the sweep
/// actually *executes* — a whole-report cache hit skips execution, and
/// the caller already holds every row in the report it received.
#[derive(Clone)]
pub struct RowObserver(RowCallback);

/// The shared callback behind a [`RowObserver`].
type RowCallback = Arc<dyn Fn(usize, &CornerRow) + Send + Sync>;

impl RowObserver {
    /// Wraps a callback. It may be called from whichever thread executes
    /// the sweep and must not block for long — it runs inside the
    /// harvest loop, between corner completions.
    pub fn new(f: impl Fn(usize, &CornerRow) + Send + Sync + 'static) -> RowObserver {
        RowObserver(Arc::new(f))
    }

    /// Invokes the callback for row `index`.
    pub(crate) fn notify(&self, index: usize, row: &CornerRow) {
        (self.0)(index, row);
    }
}

impl std::fmt::Debug for RowObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RowObserver")
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A variation-aware characterization sweep over a cell set — the
/// engine's first composite request (see the [module docs](self)).
///
/// # Example
///
/// ```
/// use cnfet::core::StdCellKind;
/// use cnfet::{Session, SweepMetrics, SweepRequest, VariationGrid};
///
/// let request = SweepRequest::new([StdCellKind::Inv])
///     .grid(VariationGrid::nominal().seeds([1, 2, 3]))
///     .metrics(SweepMetrics::IMMUNITY)
///     .mc(cnfet::immunity::McOptions { tubes: 50, ..Default::default() });
/// let report = Session::new().run(&request)?;
/// assert_eq!(report.rows.len(), 3, "one cell x three seed corners");
/// # Ok::<(), cnfet::CnfetError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SweepRequest {
    /// Cells to sweep; each is generated through the session cell cache.
    pub cells: Vec<CellRequest>,
    /// The variation grid.
    pub grid: VariationGrid,
    /// Metric selection.
    pub metrics: SweepMetrics,
    /// Base Monte-Carlo options; each corner overrides `seed` and
    /// `metallic_fraction` with its own values.
    pub mc: McOptions,
    /// Output loads for timing/liberty characterization, farads.
    pub loads_f: Vec<f64>,
    /// Per-row progress hook; excluded from the cache key (see
    /// [`RowObserver`]).
    observer: Option<RowObserver>,
}

impl SweepRequest {
    /// A sweep of the given cells over the nominal grid with every
    /// metric, default MC options, and a single 1 fF load.
    pub fn new(cells: impl IntoIterator<Item = impl Into<CellRequest>>) -> SweepRequest {
        SweepRequest {
            cells: cells.into_iter().map(Into::into).collect(),
            grid: VariationGrid::nominal(),
            metrics: SweepMetrics::ALL,
            mc: McOptions::default(),
            loads_f: vec![1e-15],
            observer: None,
        }
    }

    /// Replaces the variation grid.
    #[must_use]
    pub fn grid(mut self, grid: VariationGrid) -> SweepRequest {
        self.grid = grid;
        self
    }

    /// Replaces the metric selection.
    #[must_use]
    pub fn metrics(mut self, metrics: SweepMetrics) -> SweepRequest {
        self.metrics = metrics;
        self
    }

    /// Replaces the base Monte-Carlo options.
    #[must_use]
    pub fn mc(mut self, mc: McOptions) -> SweepRequest {
        self.mc = mc;
        self
    }

    /// Replaces the characterization load list.
    #[must_use]
    pub fn loads(mut self, loads_f: impl IntoIterator<Item = f64>) -> SweepRequest {
        self.loads_f = loads_f.into_iter().collect();
        self
    }

    /// Attaches a per-row progress observer (see [`RowObserver`] for the
    /// ordering and cache-interaction contract).
    #[must_use]
    pub fn observe_rows(mut self, observer: RowObserver) -> SweepRequest {
        self.observer = Some(observer);
        self
    }

    /// Total rows this sweep will produce: cells × grid corners. The
    /// count a streaming consumer should expect before the report lands.
    pub fn row_count(&self) -> usize {
        self.cells.len() * self.grid.len()
    }

    /// The per-corner sub-request of one (cell, corner) pair.
    fn corner_request(&self, cell: &CellRequest, corner: VariationCorner) -> SweepCornerRequest {
        SweepCornerRequest {
            cell: cell.clone(),
            corner,
            metrics: self.metrics,
            mc: self.mc.clone(),
            loads_f: self.loads_f.clone(),
        }
    }
}

/// One cell at one corner: the unit a [`SweepRequest`] fans out, itself a
/// [`SessionRequest`](crate::SessionRequest) memoized in the
/// [`RequestClass::Sweeps`](crate::RequestClass::Sweeps) cache, so
/// overlapping sweeps (and direct submissions) share corner results.
#[derive(Clone, Debug)]
pub struct SweepCornerRequest {
    /// The cell under evaluation.
    pub cell: CellRequest,
    /// The process corner.
    pub corner: VariationCorner,
    /// Metric selection.
    pub metrics: SweepMetrics,
    /// Base Monte-Carlo options (`seed`/`metallic_fraction` overridden by
    /// the corner).
    pub mc: McOptions,
    /// Characterization loads, farads.
    pub loads_f: Vec<f64>,
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// One cell × corner evaluation.
#[derive(Clone, Debug)]
pub struct CornerRow {
    /// Resolved cell name.
    pub cell: String,
    /// Cell function.
    pub kind: crate::core::StdCellKind,
    /// Drive strength.
    pub strength: u8,
    /// The corner this row was evaluated at.
    pub corner: VariationCorner,
    /// Mispositioned tubes sampled (immunity metric only).
    pub mc_tubes: Option<usize>,
    /// Sampled tubes that broke the function (immunity metric only).
    pub mc_failures: Option<usize>,
    /// `failures == 0` (immunity metric only).
    pub immune: Option<bool>,
    /// Analytic probability that none of the cell's tube *sites* is a
    /// surviving metallic short (immunity metric only).
    pub metallic_yield: Option<f64>,
    /// Load-indexed NLDM table (timing/liberty metrics).
    pub timing: Option<TimingTable>,
    /// Rendered liberty `cell` group (liberty metric only).
    pub liberty: Option<String>,
    /// Rendered `time in out i(vdd)` transient table at the first
    /// characterization load
    /// ([`SweepMetrics::retain_waveforms`] only).
    pub waveform: Option<String>,
}

impl CornerRow {
    /// Propagation delay at the first characterization load, seconds.
    pub fn delay_s(&self) -> Option<f64> {
        self.timing
            .as_ref()
            .and_then(|t| t.delays_s.first().copied())
    }

    /// Switching energy per output cycle, joules.
    pub fn energy_j(&self) -> Option<f64> {
        self.timing.as_ref().map(|t| t.energy_j)
    }

    /// Fraction of sampled mispositioned tubes that left the function
    /// intact.
    pub fn functional_yield(&self) -> Option<f64> {
        match (self.mc_tubes, self.mc_failures) {
            (Some(tubes), Some(failures)) if tubes > 0 => {
                Some(1.0 - failures as f64 / tubes as f64)
            }
            (Some(_), Some(_)) => Some(1.0),
            _ => None,
        }
    }

    /// Combined per-corner yield: functional (mispositioning) ×
    /// surviving-metallic.
    pub fn yield_frac(&self) -> Option<f64> {
        match (self.functional_yield(), self.metallic_yield) {
            (Some(f), Some(m)) => Some(f * m),
            (Some(f), None) => Some(f),
            (None, Some(m)) => Some(m),
            (None, None) => None,
        }
    }
}

/// Per-corner aggregate over every swept cell.
#[derive(Clone, Debug)]
pub struct CornerSummary {
    /// Index of the corner in [`SweepReport::corners`].
    pub corner_index: usize,
    /// The corner itself.
    pub corner: VariationCorner,
    /// Worst (minimum) combined yield across the cells.
    pub min_yield: Option<f64>,
    /// Slowest cell delay at this corner, seconds.
    pub max_delay_s: Option<f64>,
    /// Summed switching energy across the cells, joules.
    pub total_energy_j: Option<f64>,
}

/// The reduction of a [`SweepRequest`]: rows, Pareto frontier, and
/// best/worst corner summaries.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Number of distinct cell requests swept.
    pub cells: usize,
    /// The grid corners in canonical order ([`VariationGrid::corners`]).
    pub corners: Vec<VariationCorner>,
    /// One row per cell × corner, cell-major: row `(c, k)` lives at index
    /// `c * corners.len() + k`.
    pub rows: Vec<CornerRow>,
    /// Indices (into `rows`) of the delay/energy/yield Pareto frontier:
    /// rows no other row beats on every available metric at once.
    pub pareto: Vec<usize>,
    /// The corner with the best (max-min-yield, then fastest, then most
    /// frugal) aggregate.
    pub best_corner: Option<CornerSummary>,
    /// The corner with the worst aggregate.
    pub worst_corner: Option<CornerSummary>,
}

impl SweepReport {
    /// The row of cell `cell` (index into the request's cell list) at
    /// corner `corner` (index into [`SweepReport::corners`]).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn row(&self, cell: usize, corner: usize) -> &CornerRow {
        assert!(cell < self.cells, "cell index {cell} out of range");
        assert!(
            corner < self.corners.len(),
            "corner index {corner} out of range"
        );
        &self.rows[cell * self.corners.len() + corner]
    }

    /// The Pareto-frontier rows themselves.
    pub fn pareto_rows(&self) -> impl Iterator<Item = &CornerRow> {
        self.pareto.iter().map(|&i| &self.rows[i])
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// How long a sweep blocks on a pending handle when there is nothing to
/// help with (the sub-request is mid-flight on another thread, or in
/// transit between deques). Short, because helping is the fast path.
const HELP_WAIT: Duration = Duration::from_millis(2);

/// Executes a whole sweep on a session: fan out one
/// [`SweepCornerRequest`] per cell × corner through the job pool, help
/// drain the pool while waiting, reduce into a [`SweepReport`].
pub(crate) fn execute_sweep(request: &SweepRequest, session: &Session) -> Result<Arc<SweepReport>> {
    request.grid.validate("grid")?;
    let corners = request.grid.corners();
    let submissions: Vec<RequestKind> = request
        .cells
        .iter()
        .flat_map(|cell| {
            corners
                .iter()
                .map(|&corner| RequestKind::SweepCorner(request.corner_request(cell, corner)))
        })
        .collect();
    let (batch, handles) = session.submit_all_batched(submissions);

    let mut rows = Vec::with_capacity(handles.len());
    for mut handle in handles {
        // Harvest in submission order, helping the pool in between: this
        // thread may BE the pool's only worker, so parking outright on a
        // handle whose job is still queued would deadlock. `try_get` →
        // help(own batch) → short timed wait never parks while this
        // sweep's work is queued. Helping is restricted to the sweep's
        // own batch: popping an arbitrary job (e.g. a second copy of
        // this very sweep) could block on the single-flight claim this
        // thread holds.
        let response = loop {
            if let Some(response) = handle.try_get() {
                break response;
            }
            if !session.help_run_queued_job(batch) {
                if let Some(response) = handle.wait_timeout(HELP_WAIT) {
                    break response;
                }
            }
        }?;
        let row = response
            .into_sweep_corner()
            .expect("corner submissions resolve to corner rows");
        // Flush the row to any observer before moving on to the next
        // handle: rows stream in exactly the `SweepReport::rows` order.
        if let Some(observer) = &request.observer {
            observer.notify(rows.len(), &row);
        }
        rows.push(row);
    }
    Ok(Arc::new(assemble(request.cells.len(), corners, rows)))
}

/// Evaluates one cell at one corner.
pub(crate) fn execute_corner(request: &SweepCornerRequest, session: &Session) -> Result<CornerRow> {
    request.corner.validate("corner")?;
    let cell = session.run(&request.cell)?.cell;
    let corner = request.corner;
    let kind = request.cell.kind;
    let strength = request.cell.strength.max(1);

    let (mc_tubes, mc_failures, immune, metallic) = if request.metrics.immunity {
        let report = simulate(
            &cell.semantics,
            &McOptions {
                seed: corner.seed,
                metallic_fraction: corner.metallic_fraction,
                ..request.mc.clone()
            },
        );
        // Analytic surviving-metallic yield over the cell's tube sites:
        // every device of the strength-replicated networks grows
        // `tubes_per_4lambda` tubes, and one surviving metallic tube
        // shorts its device.
        let (pdn, pun, _) = kind.networks();
        let sites = (pdn.device_count() + pun.device_count()) as u64 * strength as u64;
        let process = MetallicProcess {
            metallic_fraction: corner.metallic_fraction,
            removal_efficiency: 0.0,
        };
        let m_yield = metallic_yield(&process, sites * corner.tubes_per_4lambda as u64);
        (
            Some(report.tubes),
            Some(report.failures),
            Some(report.failures == 0),
            Some(m_yield),
        )
    } else {
        (None, None, None, None)
    };

    let (timing, waveform) = if request.metrics.needs_characterization() {
        let kit = session.kit();
        let lib_cell =
            LibCell::from_layout(kit, kind, strength, cell.clone(), corner.tubes_per_4lambda);
        let char_corner = CharCorner {
            tubes_per_4lambda: corner.tubes_per_4lambda.max(1),
            pitch_scale: corner.pitch_scale,
        };
        if request.metrics.retain_waveforms {
            let (table, wave) =
                crate::dk::characterize_cell_traces(kit, &lib_cell, &request.loads_f, char_corner)?;
            (Some(table), wave)
        } else {
            let table =
                crate::dk::characterize_cell_at(kit, &lib_cell, &request.loads_f, char_corner)?;
            (Some(table), None)
        }
    } else {
        (None, None)
    };

    let liberty = if request.metrics.liberty {
        timing
            .as_ref()
            .map(|table| liberty_cell_group(&cell.name, kind, table))
    } else {
        None
    };

    Ok(CornerRow {
        cell: cell.name.clone(),
        kind,
        strength,
        corner,
        mc_tubes,
        mc_failures,
        immune,
        metallic_yield: metallic,
        timing,
        liberty,
        waveform,
    })
}

/// Renders one row's liberty-style `cell` group (same units and float
/// formats as [`crate::dk::write_liberty`], so the snippet splices into a
/// library view).
fn liberty_cell_group(name: &str, kind: crate::core::StdCellKind, table: &TimingTable) -> String {
    use std::fmt::Write as _;
    let (f, vars) = kind.function();
    let mut out = String::new();
    let _ = writeln!(out, "cell ({name}) {{");
    let _ = writeln!(out, "  pin (OUT) {{");
    let _ = writeln!(out, "    direction : output;");
    let _ = writeln!(out, "    function : \"{}\";", f.display(&vars));
    let _ = writeln!(out, "    timing () {{");
    let loads: Vec<String> = table
        .loads_f
        .iter()
        .map(|l| format!("{:.4}", l * 1e15))
        .collect();
    let delays: Vec<String> = table
        .delays_s
        .iter()
        .map(|d| format!("{:.2}", d * 1e12))
        .collect();
    let _ = writeln!(out, "      index_1 (\"{}\");", loads.join(", "));
    let _ = writeln!(out, "      values (\"{}\");", delays.join(", "));
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

// ---------------------------------------------------------------------------
// Reduction
// ---------------------------------------------------------------------------

/// Reduces the harvested rows into the report: Pareto frontier plus
/// best/worst corner summaries, all deterministic in row order.
fn assemble(cells: usize, corners: Vec<VariationCorner>, rows: Vec<CornerRow>) -> SweepReport {
    debug_assert_eq!(rows.len(), cells * corners.len());
    let pareto = pareto_frontier(&rows);
    let (best_corner, worst_corner) = corner_summaries(&corners, &rows, cells);
    SweepReport {
        cells,
        corners,
        rows,
        pareto,
        best_corner,
        worst_corner,
    }
}

/// `a` dominates `b` when it is no worse on every *shared* metric and
/// strictly better on at least one. Metrics missing on either side are
/// treated as tied, so immunity-only sweeps still get a yield frontier.
fn dominates(a: &CornerRow, b: &CornerRow) -> bool {
    // (value of a, value of b, lower_is_better)
    let axes = [
        (a.delay_s(), b.delay_s(), true),
        (a.energy_j(), b.energy_j(), true),
        (a.yield_frac(), b.yield_frac(), false),
    ];
    let mut strictly_better = false;
    for (va, vb, lower) in axes {
        let (Some(va), Some(vb)) = (va, vb) else {
            continue;
        };
        let (better, worse) = if lower {
            (va < vb, va > vb)
        } else {
            (va > vb, va < vb)
        };
        if worse {
            return false;
        }
        if better {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Indices of the non-dominated rows, in row order.
fn pareto_frontier(rows: &[CornerRow]) -> Vec<usize> {
    (0..rows.len())
        .filter(|&i| {
            !rows
                .iter()
                .enumerate()
                .any(|(j, r)| j != i && dominates(r, &rows[i]))
        })
        .collect()
}

/// Best and worst corner by (min-yield desc, max-delay asc, total-energy
/// asc), ties broken by corner index (earlier wins for best, later for
/// worst), so the summaries are deterministic.
fn corner_summaries(
    corners: &[VariationCorner],
    rows: &[CornerRow],
    cells: usize,
) -> (Option<CornerSummary>, Option<CornerSummary>) {
    if corners.is_empty() || cells == 0 {
        return (None, None);
    }
    let summaries: Vec<CornerSummary> = corners
        .iter()
        .enumerate()
        .map(|(k, &corner)| {
            let corner_rows = (0..cells).map(|c| &rows[c * corners.len() + k]);
            let mut min_yield: Option<f64> = None;
            let mut max_delay: Option<f64> = None;
            let mut total_energy: Option<f64> = None;
            for row in corner_rows {
                if let Some(y) = row.yield_frac() {
                    min_yield = Some(min_yield.map_or(y, |m: f64| m.min(y)));
                }
                if let Some(d) = row.delay_s() {
                    max_delay = Some(max_delay.map_or(d, |m: f64| m.max(d)));
                }
                if let Some(e) = row.energy_j() {
                    total_energy = Some(total_energy.unwrap_or(0.0) + e);
                }
            }
            CornerSummary {
                corner_index: k,
                corner,
                min_yield,
                max_delay_s: max_delay,
                total_energy_j: total_energy,
            }
        })
        .collect();

    // Higher is better: (yield, -delay, -energy); missing metrics rank
    // as the worst value of their axis.
    let score = |s: &CornerSummary| {
        (
            s.min_yield.unwrap_or(f64::NEG_INFINITY),
            -s.max_delay_s.unwrap_or(f64::INFINITY),
            -s.total_energy_j.unwrap_or(f64::INFINITY),
        )
    };
    let better = |a: &CornerSummary, b: &CornerSummary| score(a) > score(b);
    let mut best = 0;
    let mut worst = 0;
    for k in 1..summaries.len() {
        if better(&summaries[k], &summaries[best]) {
            best = k;
        }
        if !better(&summaries[k], &summaries[worst]) {
            worst = k;
        }
    }
    (
        Some(summaries[best].clone()),
        Some(summaries[worst].clone()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(delay: Option<f64>, energy: Option<f64>, yf: Option<f64>) -> CornerRow {
        CornerRow {
            cell: "T".into(),
            kind: crate::core::StdCellKind::Inv,
            strength: 1,
            corner: VariationCorner::nominal(),
            mc_tubes: yf.map(|_| 1000),
            mc_failures: yf.map(|y| ((1.0 - y) * 1000.0).round() as usize),
            immune: yf.map(|y| y == 1.0),
            metallic_yield: yf.map(|_| 1.0),
            timing: delay.map(|d| TimingTable {
                loads_f: vec![1e-15],
                delays_s: vec![d],
                energy_j: energy.unwrap_or(0.0),
            }),
            liberty: None,
            waveform: None,
        }
    }

    #[test]
    fn grid_cross_product_order_is_canonical() {
        let grid = VariationGrid::nominal()
            .tube_counts([26, 10])
            .metallic_fractions([0.0, 0.5])
            .seeds([1, 2]);
        assert_eq!(grid.len(), 8);
        let corners = grid.corners();
        assert_eq!(corners.len(), 8);
        // Seed varies fastest, tube count slowest.
        assert_eq!(corners[0].seed, 1);
        assert_eq!(corners[1].seed, 2);
        assert_eq!(corners[0].metallic_fraction, 0.0);
        assert_eq!(corners[2].metallic_fraction, 0.5);
        assert_eq!(corners[0].tubes_per_4lambda, 26);
        assert_eq!(corners[4].tubes_per_4lambda, 10);
        assert!(!grid.is_empty());
        assert!(VariationGrid::nominal().seeds([]).is_empty());
    }

    #[test]
    fn pareto_keeps_only_non_dominated_rows() {
        let rows = vec![
            row(Some(1.0), Some(1.0), Some(1.0)), // best on everything
            row(Some(2.0), Some(2.0), Some(0.5)), // dominated by 0
            row(Some(0.5), Some(3.0), Some(1.0)), // faster but hungrier
        ];
        assert_eq!(pareto_frontier(&rows), vec![0, 2]);
    }

    #[test]
    fn pareto_handles_missing_metrics_as_ties() {
        let rows = vec![
            row(None, None, Some(1.0)),
            row(None, None, Some(0.25)),
            row(None, None, Some(1.0)),
        ];
        // Yield-only frontier: both 100% rows survive.
        assert_eq!(pareto_frontier(&rows), vec![0, 2]);
    }

    #[test]
    fn corner_summaries_rank_deterministically() {
        let corners = vec![
            VariationCorner::nominal(),
            VariationCorner {
                metallic_fraction: 0.5,
                ..VariationCorner::nominal()
            },
        ];
        // Two cells × two corners, cell-major.
        let rows = vec![
            row(Some(1.0), Some(1.0), Some(1.0)),
            row(Some(2.0), Some(1.5), Some(0.5)),
            row(Some(1.2), Some(1.1), Some(0.9)),
            row(Some(2.5), Some(1.7), Some(0.4)),
        ];
        let (best, worst) = corner_summaries(&corners, &rows, 2);
        let best = best.unwrap();
        let worst = worst.unwrap();
        assert_eq!(best.corner_index, 0);
        assert_eq!(worst.corner_index, 1);
        assert_eq!(best.min_yield, Some(0.9));
        assert_eq!(best.max_delay_s, Some(1.2));
        assert!((best.total_energy_j.unwrap() - 2.1).abs() < 1e-12);
        assert_eq!(worst.min_yield, Some(0.4));
    }

    #[test]
    fn canonical_folds_negative_zero() {
        let grid = VariationGrid::nominal()
            .pitch_scales([-0.0, 1.0])
            .metallic_fractions([-0.0])
            .canonical();
        assert_eq!(grid.pitch_scales[0].to_bits(), 0.0_f64.to_bits());
        assert_eq!(grid.metallic_fractions[0].to_bits(), 0.0_f64.to_bits());
        // Canonicalization changes bits, not values: the grids compare equal.
        assert_eq!(grid, grid.clone().canonical());

        let corner = VariationCorner {
            pitch_scale: -0.0,
            metallic_fraction: -0.0,
            ..VariationCorner::nominal()
        }
        .canonical();
        assert_eq!(corner.pitch_scale.to_bits(), 0.0_f64.to_bits());
        assert_eq!(corner.metallic_fraction.to_bits(), 0.0_f64.to_bits());
    }

    #[test]
    fn validate_rejects_nan_and_negative_axes() {
        let nan = VariationGrid::nominal().metallic_fractions([0.0, f64::NAN]);
        let err = nan.validate("grid").unwrap_err();
        match err {
            crate::CnfetError::InvalidRequest { field, message } => {
                assert_eq!(field, "grid.metallic_fractions[1]");
                assert!(message.contains("NaN"));
            }
            other => panic!("expected InvalidRequest, got {other:?}"),
        }

        let negative = VariationGrid::nominal().pitch_scales([-1.0]);
        assert!(negative.validate("grid").is_err());
        let infinite = VariationGrid::nominal().pitch_scales([f64::INFINITY]);
        assert!(infinite.validate("grid").is_err());
        // -0.0 is zero: valid.
        assert!(VariationGrid::nominal()
            .pitch_scales([-0.0])
            .validate("grid")
            .is_ok());

        let corner = VariationCorner {
            metallic_fraction: f64::NAN,
            ..VariationCorner::nominal()
        };
        assert!(corner.validate("corner").is_err());
    }

    #[test]
    fn yield_composes_functional_and_metallic() {
        let mut r = row(None, None, Some(0.8));
        r.metallic_yield = Some(0.5);
        assert!((r.yield_frac().unwrap() - 0.4).abs() < 1e-12);
        r.mc_tubes = None;
        r.mc_failures = None;
        assert_eq!(r.yield_frac(), Some(0.5));
    }
}
