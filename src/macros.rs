//! Hierarchical arithmetic macros (multi-bit adders) as a composite
//! [`SessionRequest`](crate::SessionRequest).
//!
//! The sweep, repair and optimize layers all treat one *cell* as the
//! unit of work. This module climbs one level of hierarchy: a
//! [`MacroRequest`] composes the paper's full adder into an 8/32/64-bit
//! ripple-carry or carry-look-ahead adder — the structural side lives in
//! [`cnfet_flow::hier`] (slices hold an `Arc` reference to one shared
//! sub-cell netlist; placement and GDS keep the hierarchy two-deep) and
//! the carry plan in [`cnfet_logic::adder`] — and characterizes the
//! critical carry path per bit slice on the MNA engine's shared
//! `PatternCache`.
//!
//! # Composite execution
//!
//! [`MacroRequest`] is the engine's fourth composite request, shaped
//! exactly like a repair lot: its `execute` fans one
//! [`MacroSliceRequest`] per bit out through
//! [`Session::submit_all`](crate::Session::submit_all), helping drain
//! its own batch while harvesting (batch-targeted helping, so a bounded
//! worker set never deadlocks on the fan-out), and reduces the per-bit
//! [`SliceOutcome`]s — plus the placed/assembled hierarchy — into a
//! [`MacroReport`].
//!
//! Memoization works at **three** granularities: the whole report and
//! each bit slice in the [`RequestClass::Macros`](crate::RequestClass)
//! cache, and the full-adder's cell mix in the `Cell` class — a second
//! macro over the same cells (any width, any kind) re-executes zero cell
//! generations. Slice keys include the macro width: a CLA bit's carry
//! fan-out depends on where the prefix tree puts it, so bit 3 of an
//! 8-bit adder and bit 3 of a 64-bit adder are *not* the same work.
//!
//! # Example
//!
//! ```
//! use cnfet::logic::AdderKind;
//! use cnfet::{MacroRequest, Session};
//!
//! let session = Session::new();
//! let report = session.run(&MacroRequest::new(AdderKind::Cla, 8))?;
//! assert_eq!(report.slices.len(), 8);
//! assert!(report.critical_path_s > 0.0);
//! // Repeating the macro is a pure Macros-class cache hit.
//! let again = session.run(&MacroRequest::new(AdderKind::Cla, 8))?;
//! assert!(std::sync::Arc::ptr_eq(&report, &again));
//! # Ok::<(), cnfet::CnfetError>(())
//! ```

use crate::core::{Scheme, StdCellKind};
use crate::dk::{self, CellLibrary, CharCorner, LibCell};
use crate::error::{CnfetError, Result};
use crate::flow::{assemble_macro_gds, place_macro, MacroAdder};
use crate::logic::{AdderKind, AdderPlan};
use crate::request::RequestKind;
use crate::session::{CellRequest, LibraryRequest, Session};
use cnfet_rng::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Slice observation
// ---------------------------------------------------------------------------

/// A callback invoked with each harvested [`SliceOutcome`] of an
/// executing macro, in bit order — the hook incremental-delivery front
/// ends (the `cnfet-serve` job streaming endpoint) use to flush
/// per-bit-slice progress as slices complete instead of waiting for the
/// whole report.
///
/// Like [`DieObserver`](crate::DieObserver), the observer is **not**
/// part of the request's identity: it is excluded from the cache key, so
/// an observed and an unobserved macro share one memoized report, and
/// the observer only fires when the macro actually *executes* — a
/// whole-report cache hit skips execution, and the caller already holds
/// every outcome in the report it received.
#[derive(Clone)]
pub struct SliceObserver(SliceCallback);

/// The shared callback behind a [`SliceObserver`].
type SliceCallback = Arc<dyn Fn(usize, &SliceOutcome) + Send + Sync>;

impl SliceObserver {
    /// Wraps a callback. It may be called from whichever thread executes
    /// the macro and must not block for long — it runs inside the
    /// harvest loop, between slice completions.
    pub fn new(f: impl Fn(usize, &SliceOutcome) + Send + Sync + 'static) -> SliceObserver {
        SliceObserver(Arc::new(f))
    }

    /// Invokes the callback for bit index `index`.
    pub(crate) fn notify(&self, index: usize, outcome: &SliceOutcome) {
        (self.0)(index, outcome);
    }
}

impl std::fmt::Debug for SliceObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SliceObserver")
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// The widths a macro adder composes at. Anything else is rejected
/// before key rendering (see [`MacroRequest::validate`]).
pub const MACRO_WIDTHS: [u32; 3] = [8, 32, 64];

/// A hierarchical adder macro run — a composite request fanning one
/// [`MacroSliceRequest`] per bit (see the [module docs](self)).
///
/// # Example
///
/// ```
/// use cnfet::logic::AdderKind;
/// use cnfet::{MacroRequest, Session};
///
/// let request = MacroRequest::new(AdderKind::Ripple, 8).seed(7);
/// let report = Session::new().run(&request)?;
/// assert_eq!(report.slices.len(), 8);
/// # Ok::<(), cnfet::CnfetError>(())
/// ```
#[derive(Clone, Debug)]
pub struct MacroRequest {
    /// Carry organization of the composed adder.
    pub kind: AdderKind,
    /// Operand width in bits; must be one of [`MACRO_WIDTHS`].
    pub width: u32,
    /// Arrangement scheme of the sub-cell library.
    pub scheme: Scheme,
    /// Seed for the deterministic per-bit wire-load jitter.
    pub seed: u64,
    /// Per-slice progress hook; excluded from the cache key (see
    /// [`SliceObserver`]).
    observer: Option<SliceObserver>,
}

impl MacroRequest {
    /// A macro adder of the given kind and width in Scheme 2 (the
    /// compact shelf arrangement) with the default seed.
    pub fn new(kind: AdderKind, width: u32) -> MacroRequest {
        MacroRequest {
            kind,
            width,
            scheme: Scheme::Scheme2,
            seed: 0xADD5,
            observer: None,
        }
    }

    /// Sets the sub-cell library scheme.
    #[must_use]
    pub fn scheme(mut self, scheme: Scheme) -> MacroRequest {
        self.scheme = scheme;
        self
    }

    /// Sets the wire-load jitter seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> MacroRequest {
        self.seed = seed;
        self
    }

    /// Attaches a per-slice progress observer (see [`SliceObserver`] for
    /// the ordering and cache-interaction contract).
    #[must_use]
    pub fn observe_slices(mut self, observer: SliceObserver) -> MacroRequest {
        self.observer = Some(observer);
        self
    }

    /// Number of per-bit outcomes this macro will produce — the count a
    /// streaming consumer should expect before the report lands.
    pub fn slice_count(&self) -> usize {
        self.width as usize
    }

    /// Rejects widths outside [`MACRO_WIDTHS`] — before cache-key
    /// rendering, so a malformed macro can neither poison a
    /// single-flight entry nor occupy a cache slot.
    pub fn validate(&self) -> Result<()> {
        if MACRO_WIDTHS.contains(&self.width) {
            Ok(())
        } else {
            Err(CnfetError::InvalidRequest {
                field: "width".into(),
                message: "expected one of 8|32|64".into(),
            })
        }
    }

    /// The per-bit sub-request of one slice.
    fn slice_request(&self, bit: u32) -> MacroSliceRequest {
        MacroSliceRequest {
            kind: self.kind,
            width: self.width,
            bit,
            scheme: self.scheme,
            seed: self.seed,
        }
    }
}

/// One bit slice's characterization: the unit a [`MacroRequest`] fans
/// out, itself a [`SessionRequest`](crate::SessionRequest) memoized in
/// the [`RequestClass::Macros`](crate::RequestClass) cache. The key
/// holds the macro width as well as the bit — a CLA bit's prefix-tree
/// fan-out (and therefore its wire load) depends on the width it sits
/// in.
#[derive(Clone, Debug)]
pub struct MacroSliceRequest {
    /// Carry organization of the surrounding macro.
    pub kind: AdderKind,
    /// Width of the surrounding macro.
    pub width: u32,
    /// Bit index of this slice (`0..width`).
    pub bit: u32,
    /// Sub-cell library scheme.
    pub scheme: Scheme,
    /// Wire-load jitter seed.
    pub seed: u64,
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// One bit slice's measurements: the slice's wire load and the delays
/// of the full adder's sum and carry arcs at that load.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SliceOutcome {
    /// Bit index.
    pub bit: u32,
    /// Prefix-tree fan-out this bit's generate/transmit pair drives
    /// beyond its own slice (`0` in a ripple chain).
    pub fanout: u32,
    /// Output wire load, farads (seeded jitter × fan-out term).
    pub load_f: f64,
    /// Sum-arc delay at the load, seconds.
    pub sum_delay_s: f64,
    /// Carry-arc delay at the load, seconds.
    pub carry_delay_s: f64,
}

/// The reduction of a [`MacroRequest`]: every slice's measurements plus
/// the composed hierarchy's critical path, area, and rendered artifacts.
#[derive(Clone, Debug)]
pub struct MacroReport {
    /// Carry organization.
    pub kind: AdderKind,
    /// Operand width in bits.
    pub width: u32,
    /// Sub-cell library scheme.
    pub scheme: Scheme,
    /// One outcome per bit, in bit order (bit `k` at index `k`).
    pub slices: Vec<SliceOutcome>,
    /// Critical carry-path delay, seconds: the ripple chain summed, or
    /// the CLA tree depth times the worst stage.
    pub critical_path_s: f64,
    /// Placed block area, λ².
    pub area_l2: f64,
    /// Library-cell instances across the hierarchy (slices × sub-cell
    /// gates + glue).
    pub gate_count: usize,
    /// Full-adder sub-cell references in the top cell (one per bit).
    pub fa_instances: usize,
    /// Structural SPICE deck of the hierarchy (one `.subckt
    /// full_adder`, referenced per slice).
    pub spice: String,
    /// Two-deep GDSII stream of the placed hierarchy.
    pub gds: Vec<u8>,
}

impl MacroReport {
    /// Renders the report as a fixed-layout text table, one line per bit
    /// plus the macro aggregates. Deterministic: equal reports render
    /// byte-identically (fixed column widths, fixed float precision),
    /// which is what the determinism suite pins down across worker
    /// counts.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "macro adder_{}{}: {} bits, {}, {} gates, {} fa refs",
            self.kind.name(),
            self.width,
            self.width,
            self.scheme,
            self.gate_count,
            self.fa_instances
        );
        let _ = writeln!(
            out,
            "{:>4} {:>7} {:>13} {:>13} {:>13}",
            "bit", "fanout", "load_f", "sum_s", "carry_s"
        );
        for s in &self.slices {
            let _ = writeln!(
                out,
                "{:>4} {:>7} {:>13.6e} {:>13.6e} {:>13.6e}",
                s.bit, s.fanout, s.load_f, s.sum_delay_s, s.carry_delay_s
            );
        }
        let _ = writeln!(out, "critical path: {:.6e} s", self.critical_path_s);
        let _ = writeln!(out, "area: {:.1} lambda^2", self.area_l2);
        let _ = writeln!(
            out,
            "artifacts: {} spice bytes, {} gds bytes",
            self.spice.len(),
            self.gds.len()
        );
        out
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// How long a macro blocks on a pending handle when there is nothing of
/// its own batch to help with (same rationale as the repair layer's
/// constant: helping is the fast path).
const HELP_WAIT: Duration = Duration::from_millis(2);

/// The full adder's cell mix: what every slice generates (or recalls)
/// through the session cell cache. The CLA glue draws from the same set
/// (2X NAND2s and 4X inverters), so this list covers the whole
/// hierarchy.
const FA_CELL_MIX: [(StdCellKind, u8); 4] = [
    (StdCellKind::Nand(2), 2),
    (StdCellKind::Inv, 4),
    (StdCellKind::Inv, 7),
    (StdCellKind::Inv, 9),
];

/// Executes a whole macro on a session: fan out one
/// [`MacroSliceRequest`] per bit through the job pool, help drain the
/// macro's own batch while waiting, compose/place/assemble the
/// hierarchy, reduce into a [`MacroReport`].
pub(crate) fn execute_macro(request: &MacroRequest, session: &Session) -> Result<Arc<MacroReport>> {
    request.validate()?;
    let submissions: Vec<RequestKind> = (0..request.width)
        .map(|bit| RequestKind::MacroSlice(request.slice_request(bit)))
        .collect();
    let (batch, handles) = session.submit_all_batched(submissions);

    let mut slices = Vec::with_capacity(handles.len());
    for mut handle in handles {
        // Harvest in bit order, helping the pool in between — this
        // thread may BE the pool's only worker, so parking outright on a
        // handle whose job is still queued would deadlock. Helping is
        // restricted to the macro's own batch: popping an arbitrary job
        // (e.g. a second copy of this very macro) could block on the
        // single-flight claim this thread holds.
        let response = loop {
            if let Some(response) = handle.try_get() {
                break response;
            }
            if !session.help_run_queued_job(batch) {
                if let Some(response) = handle.wait_timeout(HELP_WAIT) {
                    break response;
                }
            }
        }?;
        let outcome = response
            .into_macro_slice()
            .expect("slice submissions resolve to slice outcomes");
        // Flush the outcome to any observer before moving on: outcomes
        // stream in exactly the `MacroReport::slices` order.
        if let Some(observer) = &request.observer {
            observer.notify(slices.len(), &outcome);
        }
        slices.push(outcome);
    }

    // Compose, place and assemble the hierarchy (the library build is a
    // Library-class hit after the slices warmed the cell cache).
    let adder = MacroAdder::new(request.kind, request.width);
    let lib = session.run(&LibraryRequest::new(request.scheme))?;
    let placement = place_macro(&adder, &lib);
    let gds = assemble_macro_gds(&adder, &placement, &lib);
    let spice = adder.to_spice();

    let critical_path_s = critical_path(request.kind, &adder.plan, &slices);
    Ok(Arc::new(MacroReport {
        kind: request.kind,
        width: request.width,
        scheme: request.scheme,
        slices,
        critical_path_s,
        area_l2: placement.area_l2,
        gate_count: adder.gate_count(),
        fa_instances: placement.slices.len(),
        spice,
        gds,
    }))
}

/// The macro's critical carry path from the harvested slice delays:
/// ripple chains every carry arc and exits through the last sum; CLA
/// pays the plan's stage depth at the worst carry arc plus the worst
/// sum arc.
fn critical_path(kind: AdderKind, plan: &AdderPlan, slices: &[SliceOutcome]) -> f64 {
    let worst = |f: fn(&SliceOutcome) -> f64| slices.iter().map(f).fold(0.0f64, f64::max);
    match kind {
        AdderKind::Ripple => {
            let chain: f64 = slices.iter().map(|s| s.carry_delay_s).sum();
            chain + slices.last().map_or(0.0, |s| s.sum_delay_s)
        }
        AdderKind::Cla => {
            f64::from(plan.carry_depth()) * worst(|s| s.carry_delay_s) + worst(|s| s.sum_delay_s)
        }
    }
}

/// Executes one bit slice: generate (or recall) the full adder's cell
/// mix through the session cell cache, then characterize the sum and
/// carry arcs at the slice's seeded wire load on the MNA engine (whose
/// process-wide `PatternCache` makes repeated same-cell transients skip
/// symbolic re-analysis).
pub(crate) fn execute_slice(
    request: &MacroSliceRequest,
    session: &Session,
) -> Result<SliceOutcome> {
    let plan = AdderPlan::new(request.kind, request.width);
    let fanout = plan.fanout_of(request.bit) as u32;

    // Seeded per-bit wire load: jitter models routing spread, the
    // fan-out term the prefix-tree pins this bit must drive.
    let mut rng = cnfet_rng::rngs::StdRng::seed_from_u64(
        request
            .seed
            .wrapping_add(u64::from(request.bit).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    let jitter: f64 = rng.gen_range(-1.0..1.0);
    let load_f = 2.0e-15 * (1.0 + 0.25 * jitter) * (1.0 + 0.15 * f64::from(fanout));

    let kit = session.kit();
    let opts = dk::library_options(kit, request.scheme);
    let mut lib_cells = Vec::with_capacity(FA_CELL_MIX.len());
    for (kind, strength) in FA_CELL_MIX {
        let req = CellRequest {
            kind,
            strength,
            options: Some(opts.clone()),
            name: Some(CellLibrary::cell_name(kind, strength)),
        };
        let cell = session.run(&req)?.cell;
        lib_cells.push(LibCell::from_layout(
            kit,
            kind,
            strength,
            cell,
            kit.tubes_per_4lambda,
        ));
    }
    let (nand, inv4, inv9) = (&lib_cells[0], &lib_cells[1], &lib_cells[3]);

    // Internal stages drive gate pins; the output buffers drive the
    // slice's wire load.
    let internal_f = (2.0 * nand.input_cap_f).min(load_f);
    let corner = CharCorner::nominal(kit);
    let d_nand = dk::characterize_cell_at(kit, nand, &[internal_f], corner)?.delay_at(internal_f);
    let d_inv4 = dk::characterize_cell_at(kit, inv4, &[internal_f], corner)?.delay_at(internal_f);
    let d_inv9 = dk::characterize_cell_at(kit, inv9, &[load_f], corner)?.delay_at(load_f);

    // Stage counts of the nine-NAND2 core: the sum arc crosses six NAND
    // stages (a→s1→s2→axb→s5→s6→sum_raw), the carry arc five
    // (…→s5→carry_raw); both exit through the 4X→9X buffer pair.
    let buffer = d_inv4 + d_inv9;
    Ok(SliceOutcome {
        bit: request.bit,
        fanout,
        load_f,
        sum_delay_s: 6.0 * d_nand + buffer,
        carry_delay_s: 5.0 * d_nand + buffer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(bit: u32, carry: f64, sum: f64) -> SliceOutcome {
        SliceOutcome {
            bit,
            fanout: 1,
            load_f: 2.0e-15,
            sum_delay_s: sum,
            carry_delay_s: carry,
        }
    }

    #[test]
    fn ripple_critical_path_chains_carries() {
        let plan = AdderPlan::new(AdderKind::Ripple, 8);
        let slices: Vec<SliceOutcome> = (0..8).map(|b| outcome(b, 1e-12, 3e-12)).collect();
        let path = critical_path(AdderKind::Ripple, &plan, &slices);
        assert!((path - (8.0 * 1e-12 + 3e-12)).abs() < 1e-18);
    }

    #[test]
    fn cla_critical_path_scales_with_depth_not_width() {
        let plan = AdderPlan::new(AdderKind::Cla, 64);
        let slices: Vec<SliceOutcome> = (0..64).map(|b| outcome(b, 1e-12, 3e-12)).collect();
        let path = critical_path(AdderKind::Cla, &plan, &slices);
        let depth = f64::from(plan.carry_depth());
        assert!((path - (depth * 1e-12 + 3e-12)).abs() < 1e-18);
        assert!(path < 64.0 * 1e-12, "CLA beats the ripple chain");
    }

    #[test]
    fn invalid_width_is_rejected_with_field_path() {
        let err = MacroRequest::new(AdderKind::Cla, 9).validate().unwrap_err();
        let text = err.to_string();
        assert!(text.contains("width"), "{text}");
        assert!(text.contains("expected one of 8|32|64"), "{text}");
    }

    #[test]
    fn render_is_deterministic() {
        let report = MacroReport {
            kind: AdderKind::Cla,
            width: 8,
            scheme: Scheme::Scheme2,
            slices: (0..8).map(|b| outcome(b, 1e-12, 3e-12)).collect(),
            critical_path_s: 8e-12,
            area_l2: 1234.5,
            gate_count: 120,
            fa_instances: 8,
            spice: "* deck\n".into(),
            gds: vec![0; 16],
        };
        let text = report.render();
        assert_eq!(text, report.render());
        assert!(text.contains("macro adder_cla8"), "{text}");
        assert!(text.contains("critical path: 8.000000e-12 s"), "{text}");
    }
}
