//! Processing↔circuit co-optimization: a derivative-free search over
//! the variation-grid axes as a composite
//! [`SessionRequest`](crate::SessionRequest).
//!
//! The sweep layer ([`crate::sweep`]) answers "what happens at these
//! corners"; this module answers the question Hills et al. pose for
//! CNFET design — *which* processing point (tube count, pitch spread,
//! surviving-metallic fraction) meets a circuit-level yield/delay/energy
//! target. An [`OptimizeRequest`] names the cells, the search axes (a
//! [`VariationGrid`]), an [`OptimizeTarget`], and a pass count; the
//! session answers with an [`OptimizeReport`]: the full candidate
//! trajectory, the best candidate, and whether the target was met.
//!
//! # The search
//!
//! Coordinate descent with successive-halving refinement, on a **fixed,
//! deterministic schedule** — the trajectory depends only on the request
//! (never on timing, worker count, or cache state):
//!
//! 1. The current point starts at the first value of each axis.
//! 2. Each pass walks the axes in order (tube count, pitch scale,
//!    metallic fraction). An *axis round* evaluates every value of that
//!    axis with the other coordinates held at the current point, then
//!    moves the point to the round's lowest-scoring coordinate (ties:
//!    earliest) if that improves on the point's score.
//! 3. Between passes the two continuous axes are *halved*: each is
//!    replaced by the same number of points, evenly spaced over half its
//!    previous span, centered on the current point (pitch clamped to
//!    `[0, ∞)`, metallic fraction to `[0, 1]`). The discrete tube-count
//!    axis is re-walked in full each pass.
//!
//! A candidate's *score* is the sum of its target violations (0 when the
//! target is met); see [`OptimizeTarget::score`].
//!
//! # Nesting and memoization
//!
//! This is the engine's deepest composite nesting: optimize → sweeps →
//! corners → cells. Every candidate evaluation **is** a memoized
//! [`SweepRequest`] (one single-point grid × the seed axis), fanned
//! through the session's job pool with the same batch-targeted helping
//! rule the sweep and repair layers use — the executing thread helps
//! drain only its own batch, so a bounded worker set never deadlocks on
//! the nested fan-outs, and overlapping candidates re-execute only new
//! corners.
//!
//! Memoization works at both granularities in the
//! [`RequestClass::Optimizations`](crate::RequestClass::Optimizations)
//! cache: a repeated search is one pure whole-trajectory hit, and each
//! measured candidate ([`CandidateOutcome`]) is memoized **target-free**
//! — re-running a search with a widened or different target replays
//! every already-measured candidate as a hit and the optimizer gets
//! cheaper as it converges.
//!
//! # Example
//!
//! ```
//! use cnfet::core::StdCellKind;
//! use cnfet::immunity::McOptions;
//! use cnfet::{OptimizeRequest, OptimizeTarget, Session, SweepMetrics, VariationGrid};
//!
//! let session = Session::new();
//! let request = OptimizeRequest::new([StdCellKind::Inv])
//!     .grid(
//!         VariationGrid::nominal()
//!             .tube_counts([26, 10])
//!             .metallic_fractions([0.0, 0.02]),
//!     )
//!     .target(OptimizeTarget::new().min_yield(0.5))
//!     .passes(1)
//!     .metrics(SweepMetrics::IMMUNITY)
//!     .mc(McOptions {
//!         tubes: 100,
//!         ..McOptions::default()
//!     });
//!
//! let report = session.run(&request)?;
//! assert_eq!(report.candidates.len(), request.candidate_count());
//! assert!(report.converged);
//! // Repeating the search is a pure Optimizations-class cache hit.
//! let again = session.run(&request)?;
//! assert!(std::sync::Arc::ptr_eq(&report, &again));
//! # Ok::<(), cnfet::CnfetError>(())
//! ```

use crate::error::Result;
use crate::immunity::McOptions;
use crate::request::RequestKind;
use crate::session::{CellRequest, Session};
use crate::sweep::{
    canonical_axis_value, check_axis_value, SweepMetrics, SweepRequest, VariationGrid,
};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Targets
// ---------------------------------------------------------------------------

/// The constraint set a search drives toward. Every field is optional;
/// a candidate *meets* the target when each set constraint is satisfied
/// by its measured aggregate ([`CandidateOutcome`]). An empty target is
/// trivially met by every candidate.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OptimizeTarget {
    /// Lower bound on the candidate's worst per-row combined yield.
    pub min_yield: Option<f64>,
    /// Upper bound on the candidate's slowest cell delay, seconds.
    pub max_delay_s: Option<f64>,
    /// Upper bound on the candidate's worst per-corner summed switching
    /// energy, joules.
    pub max_energy_j: Option<f64>,
}

impl OptimizeTarget {
    /// An empty target (no constraints).
    pub fn new() -> OptimizeTarget {
        OptimizeTarget::default()
    }

    /// Sets the minimum-yield constraint.
    #[must_use]
    pub fn min_yield(mut self, fraction: f64) -> OptimizeTarget {
        self.min_yield = Some(fraction);
        self
    }

    /// Sets the maximum-delay constraint, seconds.
    #[must_use]
    pub fn max_delay_s(mut self, seconds: f64) -> OptimizeTarget {
        self.max_delay_s = Some(seconds);
        self
    }

    /// Sets the maximum-energy constraint, joules.
    #[must_use]
    pub fn max_energy_j(mut self, joules: f64) -> OptimizeTarget {
        self.max_energy_j = Some(joules);
        self
    }

    /// The target with its floats in canonical form (`-0.0` folded to
    /// `0.0`) — trajectory cache keys render the canonical target.
    #[must_use]
    pub fn canonical(mut self) -> OptimizeTarget {
        self.min_yield = self.min_yield.map(canonical_axis_value);
        self.max_delay_s = self.max_delay_s.map(canonical_axis_value);
        self.max_energy_j = self.max_energy_j.map(canonical_axis_value);
        self
    }

    /// Checks every set constraint is usable: the yield bound a finite
    /// fraction in `[0, 1]`, the delay and energy bounds finite and
    /// strictly positive (they divide the relative violations). `prefix`
    /// names the target in the reported field path.
    ///
    /// # Errors
    ///
    /// [`CnfetError::InvalidRequest`](crate::CnfetError::InvalidRequest)
    /// naming the offending field.
    pub fn validate(&self, prefix: &str) -> Result<()> {
        if let Some(y) = self.min_yield {
            if !(y.is_finite() && (0.0..=1.0).contains(&y)) {
                return Err(crate::CnfetError::InvalidRequest {
                    field: format!("{prefix}.min_yield"),
                    message: format!("expected a finite fraction in [0, 1], got {y}"),
                });
            }
        }
        for (value, name) in [
            (self.max_delay_s, "max_delay_s"),
            (self.max_energy_j, "max_energy_j"),
        ] {
            if let Some(v) = value {
                if !(v.is_finite() && v > 0.0) {
                    return Err(crate::CnfetError::InvalidRequest {
                        field: format!("{prefix}.{name}"),
                        message: format!("expected a finite positive number, got {v}"),
                    });
                }
            }
        }
        Ok(())
    }

    /// The candidate's total target violation: `0.0` exactly when every
    /// set constraint is met. Yield contributes its absolute shortfall
    /// (yields are already fractions); delay and energy contribute their
    /// relative excess. A set constraint whose metric the candidate did
    /// not measure (e.g. a delay bound on an immunity-only sweep)
    /// contributes a full violation of `1.0`.
    pub fn score(&self, outcome: &CandidateOutcome) -> f64 {
        let mut score = 0.0;
        if let Some(bound) = self.min_yield {
            score += match outcome.min_yield {
                Some(y) if y >= bound => 0.0,
                Some(y) => bound - y,
                None => 1.0,
            };
        }
        if let Some(bound) = self.max_delay_s {
            score += match outcome.max_delay_s {
                Some(d) if d <= bound => 0.0,
                Some(d) => d / bound - 1.0,
                None => 1.0,
            };
        }
        if let Some(bound) = self.max_energy_j {
            score += match outcome.total_energy_j {
                Some(e) if e <= bound => 0.0,
                Some(e) => e / bound - 1.0,
                None => 1.0,
            };
        }
        score
    }

    /// Whether the candidate satisfies every set constraint.
    pub fn met_by(&self, outcome: &CandidateOutcome) -> bool {
        self.score(outcome) == 0.0
    }
}

// ---------------------------------------------------------------------------
// Candidate observation
// ---------------------------------------------------------------------------

/// A callback invoked with each scored [`CandidateRow`] of an executing
/// search, in schedule order — the hook incremental-delivery front ends
/// (the `cnfet-serve` job streaming endpoint) use to flush per-candidate
/// progress as rounds complete instead of waiting for the whole report.
///
/// Like the sweep layer's [`RowObserver`](crate::RowObserver), the
/// observer is **not** part of the request's identity: it is excluded
/// from the cache key, so an observed and an unobserved search share one
/// memoized report, and the observer only fires when the search actually
/// *executes* — a whole-trajectory cache hit skips execution, and the
/// caller already holds every candidate in the report it received.
#[derive(Clone)]
pub struct CandidateObserver(CandidateCallback);

/// The shared callback behind a [`CandidateObserver`].
type CandidateCallback = Arc<dyn Fn(usize, &CandidateRow) + Send + Sync>;

impl CandidateObserver {
    /// Wraps a callback. It may be called from whichever thread executes
    /// the search and must not block for long — it runs inside the
    /// harvest loop, between candidate completions.
    pub fn new(f: impl Fn(usize, &CandidateRow) + Send + Sync + 'static) -> CandidateObserver {
        CandidateObserver(Arc::new(f))
    }

    /// Invokes the callback for candidate index `index`.
    pub(crate) fn notify(&self, index: usize, row: &CandidateRow) {
        (self.0)(index, row);
    }
}

impl std::fmt::Debug for CandidateObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CandidateObserver")
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A processing↔circuit co-optimization search — the engine's deepest
/// composite request (see the [module docs](self)).
///
/// # Example
///
/// ```
/// use cnfet::core::StdCellKind;
/// use cnfet::immunity::McOptions;
/// use cnfet::{OptimizeRequest, OptimizeTarget, Session, SweepMetrics, VariationGrid};
///
/// let request = OptimizeRequest::new([StdCellKind::Inv])
///     .grid(VariationGrid::nominal().metallic_fractions([0.0, 0.05]))
///     .target(OptimizeTarget::new().min_yield(0.9))
///     .passes(1)
///     .metrics(SweepMetrics::IMMUNITY)
///     .mc(McOptions { tubes: 50, ..McOptions::default() });
/// let report = Session::new().run(&request)?;
/// assert_eq!(report.candidates.len(), 4, "1 tube + 1 pitch + 2 metallic");
/// # Ok::<(), cnfet::CnfetError>(())
/// ```
#[derive(Clone, Debug)]
pub struct OptimizeRequest {
    /// Cells every candidate is evaluated over; each is generated
    /// through the session cell cache.
    pub cells: Vec<CellRequest>,
    /// The search axes: `tube_counts`, `pitch_scales`, and
    /// `metallic_fractions` are the coordinates being searched;
    /// `seeds` is the MC replication every candidate is averaged over
    /// (each candidate's sweep runs every seed).
    pub grid: VariationGrid,
    /// The constraint set the search drives toward.
    pub target: OptimizeTarget,
    /// Coordinate-descent passes; the continuous axes halve their span
    /// between passes.
    pub passes: u32,
    /// Metric selection for every candidate sweep.
    pub metrics: SweepMetrics,
    /// Base Monte-Carlo options (`seed`/`metallic_fraction` overridden
    /// per corner, exactly as in a direct sweep).
    pub mc: McOptions,
    /// Characterization loads, farads.
    pub loads_f: Vec<f64>,
    /// Per-candidate progress hook; excluded from the cache key (see
    /// [`CandidateObserver`]).
    observer: Option<CandidateObserver>,
}

impl OptimizeRequest {
    /// A two-pass search of the given cells over the nominal grid with
    /// an empty target, every metric, default MC options, and a single
    /// 1 fF load.
    pub fn new(cells: impl IntoIterator<Item = impl Into<CellRequest>>) -> OptimizeRequest {
        OptimizeRequest {
            cells: cells.into_iter().map(Into::into).collect(),
            grid: VariationGrid::nominal(),
            target: OptimizeTarget::default(),
            passes: 2,
            metrics: SweepMetrics::ALL,
            mc: McOptions::default(),
            loads_f: vec![1e-15],
            observer: None,
        }
    }

    /// Replaces the search axes.
    #[must_use]
    pub fn grid(mut self, grid: VariationGrid) -> OptimizeRequest {
        self.grid = grid;
        self
    }

    /// Replaces the target.
    #[must_use]
    pub fn target(mut self, target: OptimizeTarget) -> OptimizeRequest {
        self.target = target;
        self
    }

    /// Sets the pass count.
    #[must_use]
    pub fn passes(mut self, passes: u32) -> OptimizeRequest {
        self.passes = passes;
        self
    }

    /// Replaces the metric selection.
    #[must_use]
    pub fn metrics(mut self, metrics: SweepMetrics) -> OptimizeRequest {
        self.metrics = metrics;
        self
    }

    /// Replaces the base Monte-Carlo options.
    #[must_use]
    pub fn mc(mut self, mc: McOptions) -> OptimizeRequest {
        self.mc = mc;
        self
    }

    /// Replaces the characterization load list.
    #[must_use]
    pub fn loads(mut self, loads_f: impl IntoIterator<Item = f64>) -> OptimizeRequest {
        self.loads_f = loads_f.into_iter().collect();
        self
    }

    /// Attaches a per-candidate progress observer (see
    /// [`CandidateObserver`] for the ordering and cache-interaction
    /// contract).
    #[must_use]
    pub fn observe_candidates(mut self, observer: CandidateObserver) -> OptimizeRequest {
        self.observer = Some(observer);
        self
    }

    /// Exact number of candidates the fixed schedule will evaluate:
    /// `passes × (|tube_counts| + |pitch_scales| + |metallic_fractions|)`
    /// — refinement replaces axis values but never their count. The
    /// count a streaming consumer should expect before the report lands.
    pub fn candidate_count(&self) -> usize {
        self.passes as usize
            * (self.grid.tube_counts.len()
                + self.grid.pitch_scales.len()
                + self.grid.metallic_fractions.len())
    }

    /// Checks the request describes a runnable search: at least one
    /// cell, one pass, a non-empty value list on every axis (including
    /// seeds), valid grid floats, and a valid target.
    ///
    /// # Errors
    ///
    /// [`CnfetError::InvalidRequest`](crate::CnfetError::InvalidRequest)
    /// naming the offending field.
    pub fn validate(&self) -> Result<()> {
        let invalid = |field: &str, message: &str| crate::CnfetError::InvalidRequest {
            field: field.to_string(),
            message: message.to_string(),
        };
        if self.cells.is_empty() {
            return Err(invalid("cells", "expected at least one cell"));
        }
        if self.passes == 0 {
            return Err(invalid("passes", "expected at least one search pass"));
        }
        for (len, name) in [
            (self.grid.tube_counts.len(), "grid.tube_counts"),
            (self.grid.pitch_scales.len(), "grid.pitch_scales"),
            (
                self.grid.metallic_fractions.len(),
                "grid.metallic_fractions",
            ),
            (self.grid.seeds.len(), "grid.seeds"),
        ] {
            if len == 0 {
                return Err(invalid(name, "expected a non-empty axis"));
            }
        }
        self.grid.validate("grid")?;
        self.target.validate("target")
    }

    /// The per-candidate sub-request at one coordinate triple.
    fn candidate_request(&self, coords: (u32, f64, f64)) -> OptimizeCandidateRequest {
        OptimizeCandidateRequest {
            cells: self.cells.clone(),
            tubes_per_4lambda: coords.0,
            pitch_scale: coords.1,
            metallic_fraction: coords.2,
            seeds: self.grid.seeds.clone(),
            metrics: self.metrics,
            mc: self.mc.clone(),
            loads_f: self.loads_f.clone(),
        }
    }
}

/// One candidate processing point: the unit an [`OptimizeRequest`]
/// measures, itself a [`SessionRequest`](crate::SessionRequest) memoized
/// in the [`RequestClass::Optimizations`](crate::RequestClass::Optimizations)
/// cache. The key holds the candidate's coordinates and evaluation
/// configuration but **never any target** — overlapping searches (and
/// direct submissions) share measured candidates whatever they were
/// searching for.
#[derive(Clone, Debug)]
pub struct OptimizeCandidateRequest {
    /// Cells evaluated at this point (generated through the session
    /// cache).
    pub cells: Vec<CellRequest>,
    /// Tube-count coordinate (CNTs per 4λ).
    pub tubes_per_4lambda: u32,
    /// Pitch-scale coordinate.
    pub pitch_scale: f64,
    /// Metallic-fraction coordinate.
    pub metallic_fraction: f64,
    /// MC replication seeds; the candidate's sweep runs every seed.
    pub seeds: Vec<u64>,
    /// Metric selection.
    pub metrics: SweepMetrics,
    /// Base Monte-Carlo options.
    pub mc: McOptions,
    /// Characterization loads, farads.
    pub loads_f: Vec<f64>,
}

impl OptimizeCandidateRequest {
    /// The candidate with its float coordinates in canonical form
    /// (`-0.0` folded to `0.0`) — cache keys render the canonical
    /// candidate.
    #[must_use]
    pub fn canonical(mut self) -> OptimizeCandidateRequest {
        self.pitch_scale = canonical_axis_value(self.pitch_scale);
        self.metallic_fraction = canonical_axis_value(self.metallic_fraction);
        self
    }

    /// Checks the candidate is measurable: at least one cell and one
    /// seed, finite non-negative float coordinates.
    ///
    /// # Errors
    ///
    /// [`CnfetError::InvalidRequest`](crate::CnfetError::InvalidRequest)
    /// naming the offending field.
    pub fn validate(&self) -> Result<()> {
        let invalid = |field: &str, message: &str| crate::CnfetError::InvalidRequest {
            field: field.to_string(),
            message: message.to_string(),
        };
        if self.cells.is_empty() {
            return Err(invalid("cells", "expected at least one cell"));
        }
        if self.seeds.is_empty() {
            return Err(invalid("seeds", "expected at least one seed"));
        }
        check_axis_value(self.pitch_scale, || "pitch_scale".to_string())?;
        check_axis_value(self.metallic_fraction, || "metallic_fraction".to_string())
    }

    /// The memoized sweep this candidate's measurement **is**: a
    /// single-point grid (this candidate's canonical coordinates) × the
    /// seed axis. Both the optimizer's fan-out and the candidate's own
    /// `execute` build the sweep through this one constructor, so the
    /// two always agree on the sweep's cache key.
    pub fn sweep_request(&self) -> SweepRequest {
        let canonical = self.clone().canonical();
        SweepRequest::new(self.cells.iter().cloned())
            .grid(VariationGrid {
                tube_counts: vec![canonical.tubes_per_4lambda],
                pitch_scales: vec![canonical.pitch_scale],
                metallic_fractions: vec![canonical.metallic_fraction],
                seeds: canonical.seeds.clone(),
            })
            .metrics(self.metrics)
            .mc(self.mc.clone())
            .loads(self.loads_f.iter().copied())
    }
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// Target-free aggregate measurements of one candidate point — what the
/// [`RequestClass::Optimizations`](crate::RequestClass::Optimizations)
/// cache memoizes per candidate. Worst-case over the candidate's sweep:
/// the minimum per-row combined yield, the slowest cell delay, and the
/// largest per-corner summed switching energy. Metrics the sweep did
/// not measure are `None`.
#[derive(Clone, Debug, PartialEq)]
pub struct CandidateOutcome {
    /// Tube-count coordinate (CNTs per 4λ).
    pub tubes_per_4lambda: u32,
    /// Pitch-scale coordinate (canonical form).
    pub pitch_scale: f64,
    /// Metallic-fraction coordinate (canonical form).
    pub metallic_fraction: f64,
    /// Sweep rows the aggregates reduce (cells × seeds).
    pub rows: usize,
    /// Worst per-row combined yield across the candidate's sweep.
    pub min_yield: Option<f64>,
    /// Slowest cell delay across the candidate's sweep, seconds.
    pub max_delay_s: Option<f64>,
    /// Largest per-corner summed switching energy, joules.
    pub total_energy_j: Option<f64>,
}

/// One scored entry of an [`OptimizeReport`] trajectory: which schedule
/// slot produced it, what was measured, and how it ranked.
#[derive(Clone, Debug)]
pub struct CandidateRow {
    /// Position in the schedule (and in
    /// [`OptimizeReport::candidates`]).
    pub index: usize,
    /// Zero-based coordinate-descent pass.
    pub pass: u32,
    /// The axis whose round produced this candidate.
    pub axis: OptimizeAxis,
    /// The measured aggregates.
    pub outcome: CandidateOutcome,
    /// Total target violation ([`OptimizeTarget::score`]); `0.0` when
    /// the target is met.
    pub score: f64,
    /// Whether this candidate satisfies every set constraint.
    pub meets_target: bool,
    /// Whether this candidate strictly improved on every earlier one —
    /// the candidate held [`OptimizeReport::best_index`] when it landed.
    pub best_so_far: bool,
}

/// The axis a candidate's round was walking.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OptimizeAxis {
    /// The discrete tube-count axis.
    TubeCount,
    /// The continuous pitch-scale axis.
    PitchScale,
    /// The continuous metallic-fraction axis.
    MetallicFraction,
}

impl OptimizeAxis {
    /// Stable lower-case name (`"tubes"`, `"pitch"`, `"metallic"`) —
    /// what reports render and the wire protocol speaks.
    pub fn name(self) -> &'static str {
        match self {
            OptimizeAxis::TubeCount => "tubes",
            OptimizeAxis::PitchScale => "pitch",
            OptimizeAxis::MetallicFraction => "metallic",
        }
    }
}

/// The reduction of an [`OptimizeRequest`]: the full candidate
/// trajectory in schedule order, the best candidate, and the verdict.
#[derive(Clone, Debug)]
pub struct OptimizeReport {
    /// Number of distinct cell requests evaluated per candidate.
    pub cells: usize,
    /// The target the trajectory was scored against.
    pub target: OptimizeTarget,
    /// Coordinate-descent passes the schedule ran.
    pub passes: u32,
    /// Every scored candidate, in schedule order (candidate `k` at
    /// index `k`).
    pub candidates: Vec<CandidateRow>,
    /// Index (into `candidates`) of the lowest-scoring candidate, ties
    /// broken toward the earliest. `None` only for an empty trajectory.
    pub best_index: Option<usize>,
    /// Whether the best candidate meets the target.
    pub converged: bool,
}

impl OptimizeReport {
    /// The best candidate row itself.
    pub fn best(&self) -> Option<&CandidateRow> {
        self.best_index.map(|i| &self.candidates[i])
    }

    /// Renders the report as a fixed-layout text table, one line per
    /// candidate plus the search verdict. Deterministic: equal reports
    /// render byte-identically (fixed column widths, fixed float
    /// precision), which is what the determinism suite pins down.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let opt_frac = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |v| format!("{v:.6}"));
        let opt_sci = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |v| format!("{v:.3e}"));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "co-optimization: {} cells, {} passes, {} candidates",
            self.cells,
            self.passes,
            self.candidates.len()
        );
        let _ = writeln!(
            out,
            "target: yield >= {}, delay <= {} s, energy <= {} J",
            opt_frac(self.target.min_yield),
            opt_sci(self.target.max_delay_s),
            opt_sci(self.target.max_energy_j)
        );
        let _ = writeln!(
            out,
            "{:>5} {:>4} {:>8} {:>5} {:>9} {:>9} {:>9} {:>10} {:>10} {:>9} {:>4}",
            "cand",
            "pass",
            "axis",
            "tubes",
            "pitch",
            "metallic",
            "min-yield",
            "max-delay",
            "energy",
            "score",
            "met"
        );
        for row in &self.candidates {
            let _ = writeln!(
                out,
                "{:>5} {:>4} {:>8} {:>5} {:>9.6} {:>9.6} {:>9} {:>10} {:>10} {:>9.6} {:>4}{}",
                row.index,
                row.pass,
                row.axis.name(),
                row.outcome.tubes_per_4lambda,
                row.outcome.pitch_scale,
                row.outcome.metallic_fraction,
                opt_frac(row.outcome.min_yield),
                opt_sci(row.outcome.max_delay_s),
                opt_sci(row.outcome.total_energy_j),
                row.score,
                if row.meets_target { "yes" } else { "no" },
                if row.best_so_far { "  *" } else { "" }
            );
        }
        match self.best() {
            Some(best) => {
                let _ = writeln!(
                    out,
                    "best: candidate {} (tubes {}, pitch {:.6}, metallic {:.6}), score {:.6}",
                    best.index,
                    best.outcome.tubes_per_4lambda,
                    best.outcome.pitch_scale,
                    best.outcome.metallic_fraction,
                    best.score
                );
            }
            None => {
                let _ = writeln!(out, "best: n/a (empty trajectory)");
            }
        }
        let _ = writeln!(
            out,
            "converged: {}",
            if self.converged { "yes" } else { "no" }
        );
        out
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// How long a search blocks on a pending handle when there is nothing of
/// its own batch to help with (same rationale as the sweep and repair
/// layers: helping is the fast path).
const HELP_WAIT: Duration = Duration::from_millis(2);

/// Executes a whole search on a session: per axis round, fan one
/// memoized candidate sweep per axis value through the job pool, help
/// drain the round's own batch while harvesting, score the outcomes, and
/// walk the coordinate-descent schedule to an [`OptimizeReport`].
pub(crate) fn execute_optimize(
    request: &OptimizeRequest,
    session: &Session,
) -> Result<Arc<OptimizeReport>> {
    request.validate()?;
    let tube_axis = request.grid.tube_counts.clone();
    let mut pitch_axis: Vec<f64> = request
        .grid
        .pitch_scales
        .iter()
        .map(|&v| canonical_axis_value(v))
        .collect();
    let mut metallic_axis: Vec<f64> = request
        .grid
        .metallic_fractions
        .iter()
        .map(|&v| canonical_axis_value(v))
        .collect();

    // The current point starts at the first value of each axis; its
    // score starts unknown (the first round always adopts).
    let mut point = (tube_axis[0], pitch_axis[0], metallic_axis[0]);
    let mut point_score = f64::INFINITY;

    let mut candidates: Vec<CandidateRow> = Vec::with_capacity(request.candidate_count());
    let mut best: Option<usize> = None;
    const AXES: [OptimizeAxis; 3] = [
        OptimizeAxis::TubeCount,
        OptimizeAxis::PitchScale,
        OptimizeAxis::MetallicFraction,
    ];
    for pass in 0..request.passes {
        for axis in AXES {
            let coords: Vec<(u32, f64, f64)> = match axis {
                OptimizeAxis::TubeCount => {
                    tube_axis.iter().map(|&t| (t, point.1, point.2)).collect()
                }
                OptimizeAxis::PitchScale => {
                    pitch_axis.iter().map(|&p| (point.0, p, point.2)).collect()
                }
                OptimizeAxis::MetallicFraction => metallic_axis
                    .iter()
                    .map(|&m| (point.0, point.1, m))
                    .collect(),
            };
            let outcomes = evaluate_round(request, session, &coords)?;

            // Score the round in schedule order; the round's best (lowest
            // score, ties earliest) moves the coordinate when it improves
            // on the current point.
            let mut round_best: Option<(usize, f64)> = None;
            for outcome in outcomes {
                let score = request.target.score(&outcome);
                let index = candidates.len();
                let improves = best.is_none_or(|b| score < candidates[b].score);
                let row = CandidateRow {
                    index,
                    pass,
                    axis,
                    meets_target: request.target.met_by(&outcome),
                    outcome,
                    score,
                    best_so_far: improves,
                };
                if improves {
                    best = Some(index);
                }
                if round_best.is_none_or(|(_, s)| score < s) {
                    round_best = Some((index, score));
                }
                // Flush the row to any observer before moving on:
                // candidates stream in exactly the
                // `OptimizeReport::candidates` order.
                if let Some(observer) = &request.observer {
                    observer.notify(index, &row);
                }
                candidates.push(row);
            }
            let (round_index, round_score) = round_best.expect("axis rounds are non-empty");
            if round_score < point_score {
                let winner = &candidates[round_index].outcome;
                point = (
                    winner.tubes_per_4lambda,
                    winner.pitch_scale,
                    winner.metallic_fraction,
                );
                point_score = round_score;
            }
        }
        // Successive halving: each continuous axis re-spans half its
        // previous width, centered on the current point. The tube axis
        // is discrete — it re-walks the full user list each pass (the
        // repeats are pure candidate-cache hits).
        if pass + 1 < request.passes {
            pitch_axis = refine_axis(&pitch_axis, point.1, 0.0, f64::INFINITY);
            metallic_axis = refine_axis(&metallic_axis, point.2, 0.0, 1.0);
        }
    }

    let converged = best.is_some_and(|b| candidates[b].meets_target);
    Ok(Arc::new(OptimizeReport {
        cells: request.cells.len(),
        target: request.target.canonical(),
        passes: request.passes,
        candidates,
        best_index: best,
        converged,
    }))
}

/// Evaluates one axis round: fan every coordinate's sweep through the
/// job pool (each a memoized [`SweepRequest`] — overlapping candidates
/// re-execute only new corners), helping the round's own batch while
/// harvesting, then reduce each sweep into its memoized
/// [`CandidateOutcome`] (a pure sweep-cache hit at that point).
fn evaluate_round(
    request: &OptimizeRequest,
    session: &Session,
    coords: &[(u32, f64, f64)],
) -> Result<Vec<CandidateOutcome>> {
    let submissions: Vec<RequestKind> = coords
        .iter()
        .map(|&c| RequestKind::Sweep(request.candidate_request(c).sweep_request()))
        .collect();
    let (batch, handles) = session.submit_all_batched(submissions);

    let mut outcomes = Vec::with_capacity(handles.len());
    for (i, mut handle) in handles.into_iter().enumerate() {
        // Harvest in schedule order, helping the pool in between — this
        // thread may BE the pool's only worker, so parking outright on a
        // handle whose job is still queued would deadlock. Helping is
        // restricted to the round's own batch: popping an arbitrary job
        // (e.g. a second copy of this very search) could block on the
        // single-flight claim this thread holds.
        let response = loop {
            if let Some(response) = handle.try_get() {
                break response;
            }
            if !session.help_run_queued_job(batch) {
                if let Some(response) = handle.wait_timeout(HELP_WAIT) {
                    break response;
                }
            }
        }?;
        let _report = response
            .into_sweep()
            .expect("candidate submissions resolve to sweep reports");
        // The candidate reduction runs through the session so the
        // outcome memoizes in the Optimizations class; its inner sweep
        // re-run is a pure hit on the report just harvested.
        outcomes.push(session.run(&request.candidate_request(coords[i]))?);
    }
    Ok(outcomes)
}

/// Executes one candidate: run (or recall) its sweep, then reduce the
/// rows into target-free worst-case aggregates.
pub(crate) fn execute_candidate(
    request: &OptimizeCandidateRequest,
    session: &Session,
) -> Result<CandidateOutcome> {
    request.validate()?;
    let report = session.run(&request.sweep_request())?;
    let canonical = request.clone().canonical();

    let mut min_yield: Option<f64> = None;
    let mut max_delay: Option<f64> = None;
    for row in &report.rows {
        if let Some(y) = row.yield_frac() {
            min_yield = Some(min_yield.map_or(y, |m: f64| m.min(y)));
        }
        if let Some(d) = row.delay_s() {
            max_delay = Some(max_delay.map_or(d, |m: f64| m.max(d)));
        }
    }
    // Worst corner by summed energy: energy budgets are per corner
    // (every cell switches), then worst-cased over the seed replicas.
    let mut total_energy: Option<f64> = None;
    for k in 0..report.corners.len() {
        let mut corner_energy: Option<f64> = None;
        for c in 0..report.cells {
            if let Some(e) = report.row(c, k).energy_j() {
                corner_energy = Some(corner_energy.unwrap_or(0.0) + e);
            }
        }
        if let Some(e) = corner_energy {
            total_energy = Some(total_energy.map_or(e, |m: f64| m.max(e)));
        }
    }
    Ok(CandidateOutcome {
        tubes_per_4lambda: canonical.tubes_per_4lambda,
        pitch_scale: canonical.pitch_scale,
        metallic_fraction: canonical.metallic_fraction,
        rows: report.rows.len(),
        min_yield,
        max_delay_s: max_delay,
        total_energy_j: total_energy,
    })
}

/// Halves a continuous axis: the same number of points, evenly spaced
/// over half the previous span, centered on `center` and clamped to
/// `[lo, hi]`. A single-point axis is already converged and returns
/// unchanged.
fn refine_axis(axis: &[f64], center: f64, lo: f64, hi: f64) -> Vec<f64> {
    let n = axis.len();
    if n <= 1 {
        return axis.to_vec();
    }
    let axis_lo = axis.iter().copied().fold(f64::INFINITY, f64::min);
    let axis_hi = axis.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    // Half the span, so a quarter to each side of the center.
    let reach = (axis_hi - axis_lo) / 4.0;
    let start = (center - reach).clamp(lo, hi);
    let end = (center + reach).clamp(lo, hi);
    let step = (end - start) / (n - 1) as f64;
    (0..n)
        .map(|i| canonical_axis_value(start + step * i as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(
        yield_frac: Option<f64>,
        delay: Option<f64>,
        energy: Option<f64>,
    ) -> CandidateOutcome {
        CandidateOutcome {
            tubes_per_4lambda: 26,
            pitch_scale: 1.0,
            metallic_fraction: 0.0,
            rows: 1,
            min_yield: yield_frac,
            max_delay_s: delay,
            total_energy_j: energy,
        }
    }

    #[test]
    fn score_sums_violations_and_zeroes_when_met() {
        let target = OptimizeTarget::new()
            .min_yield(0.9)
            .max_delay_s(1e-9)
            .max_energy_j(1e-15);
        let good = outcome(Some(0.95), Some(0.5e-9), Some(0.5e-15));
        assert_eq!(target.score(&good), 0.0);
        assert!(target.met_by(&good));

        let bad = outcome(Some(0.4), Some(2e-9), Some(0.5e-15));
        // Yield shortfall 0.5 + relative delay excess 1.0.
        assert!((target.score(&bad) - 1.5).abs() < 1e-9);
        assert!(!target.met_by(&bad));

        // A set constraint with no measurement is a full violation.
        let unmeasured = outcome(Some(0.95), None, None);
        assert_eq!(target.score(&unmeasured), 2.0);
    }

    #[test]
    fn empty_target_is_trivially_met() {
        let target = OptimizeTarget::new();
        assert_eq!(target.score(&outcome(None, None, None)), 0.0);
        assert!(target.met_by(&outcome(None, None, None)));
    }

    #[test]
    fn target_validate_rejects_unusable_bounds() {
        assert!(OptimizeTarget::new()
            .min_yield(1.5)
            .validate("target")
            .is_err());
        assert!(OptimizeTarget::new()
            .min_yield(f64::NAN)
            .validate("target")
            .is_err());
        assert!(OptimizeTarget::new()
            .max_delay_s(0.0)
            .validate("target")
            .is_err());
        assert!(OptimizeTarget::new()
            .max_energy_j(-1.0)
            .validate("target")
            .is_err());
        assert!(OptimizeTarget::new()
            .min_yield(0.9)
            .max_delay_s(1e-9)
            .validate("target")
            .is_ok());
    }

    #[test]
    fn refine_axis_halves_span_around_center() {
        let axis = vec![0.5, 1.0, 1.5];
        let refined = refine_axis(&axis, 1.0, 0.0, f64::INFINITY);
        assert_eq!(refined.len(), 3);
        // Span 1.0 halves to 0.5, centered on 1.0.
        assert!((refined[0] - 0.75).abs() < 1e-12);
        assert!((refined[1] - 1.0).abs() < 1e-12);
        assert!((refined[2] - 1.25).abs() < 1e-12);
        // Clamped at zero, and single-point axes stay fixed.
        let clamped = refine_axis(&[0.0, 0.4], 0.0, 0.0, 1.0);
        assert_eq!(clamped[0], 0.0);
        assert_eq!(refine_axis(&[1.0], 1.0, 0.0, 1.0), vec![1.0]);
    }

    #[test]
    fn candidate_count_is_passes_times_axis_lengths() {
        let request = OptimizeRequest::new([crate::core::StdCellKind::Inv])
            .grid(
                VariationGrid::nominal()
                    .tube_counts([26, 20, 10])
                    .pitch_scales([0.8, 1.0])
                    .metallic_fractions([0.0, 0.01]),
            )
            .passes(3);
        assert_eq!(request.candidate_count(), 3 * (3 + 2 + 2));
    }

    #[test]
    fn validate_rejects_empty_schedules() {
        let base = OptimizeRequest::new([crate::core::StdCellKind::Inv]);
        assert!(base.validate().is_ok());
        assert!(base.clone().passes(0).validate().is_err());
        assert!(base
            .clone()
            .grid(VariationGrid::nominal().seeds([]))
            .validate()
            .is_err());
        assert!(base
            .clone()
            .grid(VariationGrid::nominal().tube_counts([]))
            .validate()
            .is_err());
        assert!(base
            .clone()
            .grid(VariationGrid::nominal().metallic_fractions([f64::NAN]))
            .validate()
            .is_err());
        assert!(base
            .clone()
            .target(OptimizeTarget::new().max_delay_s(f64::INFINITY))
            .validate()
            .is_err());
        let empty: [crate::core::StdCellKind; 0] = [];
        assert!(OptimizeRequest::new(empty).validate().is_err());
    }

    #[test]
    fn render_is_deterministic_and_marks_best() {
        let target = OptimizeTarget::new().min_yield(0.9);
        let rows = vec![
            CandidateRow {
                index: 0,
                pass: 0,
                axis: OptimizeAxis::TubeCount,
                outcome: outcome(Some(0.5), None, None),
                score: 0.4,
                meets_target: false,
                best_so_far: true,
            },
            CandidateRow {
                index: 1,
                pass: 0,
                axis: OptimizeAxis::MetallicFraction,
                outcome: outcome(Some(0.95), None, None),
                score: 0.0,
                meets_target: true,
                best_so_far: true,
            },
        ];
        let report = OptimizeReport {
            cells: 1,
            target,
            passes: 1,
            candidates: rows,
            best_index: Some(1),
            converged: true,
        };
        let text = report.render();
        assert_eq!(text, report.render());
        assert!(text.contains("best: candidate 1"), "{text}");
        assert!(text.contains("converged: yes"), "{text}");
        assert!(text.contains("tubes"), "{text}");
        // Missing metrics render as "-".
        assert!(text.contains('-'), "{text}");
    }
}
