//! The `Session` engine: one front door for the whole CNFET stack.
//!
//! A [`Session`] owns a design kit and default generation options, and
//! services typed requests — [`CellRequest`] → [`CellResult`],
//! [`LibraryRequest`] → [`CellLibrary`], [`ImmunityRequest`] →
//! [`ImmunityReport`], [`FlowRequest`] → [`FlowResult`] — through an
//! internal memoizing cache. The cache is keyed by the full generation
//! input (`StdCellKind` × strength × `GenerateOptions`, which embeds the
//! `DesignRules`), so co-optimization sweeps that re-request the same
//! cells thousands of times (Hills et al.'s CNT-variation loops) pay for
//! each layout exactly once; every later hit returns the same
//! [`Arc`]-shared cell.
//!
//! The cache is the sharded, bounded, single-flight design of
//! [`crate::cache`]: hits on different keys take different locks (the
//! contended hit path scales with threads), capacity is bounded with LRU
//! eviction, and [`SessionBuilder::cache_capacity`] /
//! [`SessionBuilder::cache_shards`] tune it. Immunity verdicts and flow
//! results ride the same machinery. [`Session::generate_batch`] fans a
//! request list out across a work-stealing executor (the private `batch` module) so
//! cost-skewed request lists keep every worker busy.
//!
//! # Example
//!
//! ```
//! use cnfet::{CellRequest, Session};
//! use cnfet::core::StdCellKind;
//!
//! let session = Session::new();
//! let first = session.generate(&CellRequest::new(StdCellKind::Nand(3)))?;
//! let again = session.generate(&CellRequest::new(StdCellKind::Nand(3)))?;
//! assert!(!first.cached && again.cached, "second request is a cache hit");
//! assert_eq!(session.stats().cell_misses, 1);
//! # Ok::<(), cnfet::CnfetError>(())
//! ```

use crate::batch;
use crate::cache::{CacheStats, ShardedCache, DEFAULT_CAPACITY, DEFAULT_SHARDS};
use crate::core::{
    generate_cell, generate_from_networks, GenerateError, GenerateOptions, GeneratedCell,
    RowPolicy, Scheme, Sizing, StdCellKind, Style,
};
use crate::dk::{self, CellLibrary, DesignKit};
use crate::error::{CnfetError, Result};
use crate::flow::{
    assemble_gds_with, full_adder, parse_verilog, place_cmos_with, place_cnfet_with,
    simulate_netlist_with, Netlist, NetlistMetrics, Placement, Tech,
};
use crate::immunity::{certify, simulate, CertReport, McOptions, McReport};
use crate::logic::{SpNetwork, VarTable};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A request for one standard-cell layout.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CellRequest {
    /// Cell function.
    pub kind: StdCellKind,
    /// Drive strength: `1` for the plain cell, `n > 1` for an `n`-fingered
    /// library cell (parallel replicas snaked through shared contacts).
    pub strength: u8,
    /// Generation options; `None` uses the session defaults.
    pub options: Option<GenerateOptions>,
    /// Overrides the generated cell's name (library cells use `INV_X4`
    /// style names).
    pub name: Option<String>,
}

impl CellRequest {
    /// A strength-1 request with session-default options.
    pub fn new(kind: StdCellKind) -> CellRequest {
        CellRequest {
            kind,
            strength: 1,
            options: None,
            name: None,
        }
    }

    /// Sets explicit generation options.
    #[must_use]
    pub fn options(mut self, options: GenerateOptions) -> CellRequest {
        self.options = Some(options);
        self
    }

    /// Sets the drive strength.
    #[must_use]
    pub fn strength(mut self, strength: u8) -> CellRequest {
        self.strength = strength.max(1);
        self
    }

    /// Overrides the generated cell name.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> CellRequest {
        self.name = Some(name.into());
        self
    }
}

impl From<StdCellKind> for CellRequest {
    fn from(kind: StdCellKind) -> CellRequest {
        CellRequest::new(kind)
    }
}

/// The answer to a [`CellRequest`].
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The generated (possibly cache-shared) layout.
    pub cell: Arc<GeneratedCell>,
    /// Whether the session cache already held this layout.
    pub cached: bool,
}

/// A request for a full standard-cell library.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LibraryRequest {
    /// Cell arrangement scheme for every layout in the library.
    pub scheme: Scheme,
}

impl LibraryRequest {
    /// Library in the given scheme.
    pub fn new(scheme: Scheme) -> LibraryRequest {
        LibraryRequest { scheme }
    }
}

impl From<Scheme> for LibraryRequest {
    fn from(scheme: Scheme) -> LibraryRequest {
        LibraryRequest { scheme }
    }
}

/// Which immunity engine(s) to run on a cell.
#[derive(Clone, Debug)]
pub enum ImmunityEngine {
    /// Sound certification only (fast; if it says immune, no mispositioned
    /// tube can break the cell).
    Certify,
    /// Monte-Carlo only: sampled wavy tubes, failure counts, witnesses.
    MonteCarlo(McOptions),
    /// Both engines; the verdict requires both to pass.
    Both(McOptions),
}

/// A request to analyze a cell's mispositioned-CNT immunity.
#[derive(Clone, Debug)]
pub struct ImmunityRequest {
    /// Which cell to analyze (generated through the session cache).
    pub cell: CellRequest,
    /// Which engine(s) to run.
    pub engine: ImmunityEngine,
}

impl ImmunityRequest {
    /// Certification-only request for a cell.
    pub fn certify(cell: impl Into<CellRequest>) -> ImmunityRequest {
        ImmunityRequest {
            cell: cell.into(),
            engine: ImmunityEngine::Certify,
        }
    }

    /// Monte-Carlo request for a cell.
    pub fn monte_carlo(cell: impl Into<CellRequest>, opts: McOptions) -> ImmunityRequest {
        ImmunityRequest {
            cell: cell.into(),
            engine: ImmunityEngine::MonteCarlo(opts),
        }
    }
}

/// The answer to an [`ImmunityRequest`].
#[derive(Clone, Debug)]
pub struct ImmunityReport {
    /// The analyzed cell.
    pub cell: Arc<GeneratedCell>,
    /// Combined verdict of every engine that ran.
    pub immune: bool,
    /// Certification details, when requested.
    pub cert: Option<CertReport>,
    /// Monte-Carlo details, when requested.
    pub mc: Option<McReport>,
}

/// Where a flow's gate-level netlist comes from.
#[derive(Clone, Debug)]
pub enum FlowSource {
    /// The paper's Figure 8 full adder.
    FullAdder,
    /// Structural Verilog source text.
    Verilog(String),
    /// An already-built netlist.
    Netlist(Netlist),
}

/// Target technology/arrangement of a flow run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowTarget {
    /// CNFET library in the given scheme.
    Cnfet(Scheme),
    /// The industrial-65nm-like CMOS baseline (row placement).
    Cmos,
}

/// Transient-simulation spec for a flow run.
#[derive(Clone, Debug)]
pub struct SimSpec {
    /// Primary input that gets the full-cycle pulse.
    pub toggle_in: String,
    /// Values for the remaining primary inputs.
    pub ties: BTreeMap<String, bool>,
    /// Primary output the delay is measured to.
    pub watch_out: String,
}

/// A request to run the logic-to-GDSII flow.
#[derive(Clone, Debug)]
pub struct FlowRequest {
    /// Netlist source.
    pub source: FlowSource,
    /// Target technology.
    pub target: FlowTarget,
    /// Optional transistor-level simulation after placement.
    pub sim: Option<SimSpec>,
    /// Assemble the placed design to a GDSII stream (CNFET targets only;
    /// the CMOS baseline has no drawn library).
    pub emit_gds: bool,
}

impl FlowRequest {
    /// Place-only flow for a source in a CNFET scheme.
    pub fn cnfet(source: FlowSource, scheme: Scheme) -> FlowRequest {
        FlowRequest {
            source,
            target: FlowTarget::Cnfet(scheme),
            sim: None,
            emit_gds: false,
        }
    }

    /// Place-only flow for a source in the CMOS baseline.
    pub fn cmos(source: FlowSource) -> FlowRequest {
        FlowRequest {
            source,
            target: FlowTarget::Cmos,
            sim: None,
            emit_gds: false,
        }
    }

    /// Adds a transient simulation to the run.
    #[must_use]
    pub fn simulate(mut self, spec: SimSpec) -> FlowRequest {
        self.sim = Some(spec);
        self
    }

    /// Requests GDSII assembly of the placed design.
    #[must_use]
    pub fn with_gds(mut self) -> FlowRequest {
        self.emit_gds = true;
        self
    }
}

/// The answer to a [`FlowRequest`].
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// The flow's netlist (parsed or passed through).
    pub netlist: Netlist,
    /// The placement.
    pub placement: Placement,
    /// Delay/energy metrics, when a simulation was requested.
    pub metrics: Option<NetlistMetrics>,
    /// GDSII stream, when requested on a CNFET target.
    pub gds: Option<Vec<u8>>,
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct StatsInner {
    batches: AtomicU64,
    flows: AtomicU64,
    steals: AtomicU64,
}

/// A point-in-time snapshot of a session's cache and executor counters.
///
/// Hit/miss/eviction counts are aggregated over the cache shards; the
/// per-shard breakdown is available from [`Session::cell_cache_stats`]
/// and friends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Cell requests answered from the cache.
    pub cell_hits: u64,
    /// Cell requests that ran the layout generator.
    pub cell_misses: u64,
    /// Cell layouts evicted to respect the capacity bound.
    pub cell_evictions: u64,
    /// Library requests answered from the cache.
    pub library_hits: u64,
    /// Library requests that built a library.
    pub library_misses: u64,
    /// Libraries evicted to respect the capacity bound.
    pub library_evictions: u64,
    /// Immunity requests whose engine verdict was recalled from the cache.
    pub immunity_hits: u64,
    /// Immunity requests that ran the engine(s).
    pub immunity_misses: u64,
    /// Flow requests answered from the cache.
    pub flow_hits: u64,
    /// Flow requests that ran the flow.
    pub flow_misses: u64,
    /// Times a request blocked waiting on another thread's in-flight
    /// build of the same key (across all caches).
    pub inflight_waits: u64,
    /// `generate_batch` invocations.
    pub batches: u64,
    /// Deque-to-deque steals performed by the batch executor.
    pub steals: u64,
    /// Flow runs (every [`Session::flow`] call, hit or miss).
    pub flows: u64,
}

impl SessionStats {
    /// Total cell requests served.
    pub fn cell_requests(&self) -> u64 {
        self.cell_hits + self.cell_misses
    }
}

// ---------------------------------------------------------------------------
// Cache keys
// ---------------------------------------------------------------------------

/// The memoization key: the complete input of a generation. Options embed
/// the [`DesignRules`](crate::core::DesignRules), so two sessions-worth of
/// rule decks never collide.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum CellKey {
    Catalog {
        kind: StdCellKind,
        strength: u8,
        name: Option<String>,
        opts: GenerateOptions,
    },
    Custom {
        name: String,
        pdn: SpNetwork,
        pun: SpNetwork,
        var_names: Vec<String>,
        opts: GenerateOptions,
    },
}

/// Memoization key of an immunity verdict: the cell's cache key plus a
/// canonical rendering of the engine selection (`McOptions` holds floats,
/// so the engine is keyed by its exact `Debug` form — equal options render
/// equally, distinct options render distinctly).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct ImmunityKey {
    cell: CellKey,
    engine: String,
}

/// The cached part of an [`ImmunityReport`] (everything but the cell).
#[derive(Debug)]
struct ImmunityOutcome {
    immune: bool,
    cert: Option<CertReport>,
    mc: Option<McReport>,
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Configures and builds a [`Session`].
///
/// # Example
///
/// ```
/// use cnfet::SessionBuilder;
/// use cnfet::core::{Scheme, Sizing, Style};
///
/// let session = SessionBuilder::new()
///     .scheme(Scheme::Scheme2)
///     .sizing(Sizing::Uniform { width_lambda: 6 })
///     .build();
/// assert_eq!(session.defaults().scheme, Scheme::Scheme2);
/// assert_eq!(session.defaults().style, Style::NewImmune);
/// ```
#[derive(Clone, Debug)]
pub struct SessionBuilder {
    kit: DesignKit,
    defaults: GenerateOptions,
    cache_capacity: usize,
    cache_shards: usize,
    batch_workers: usize,
}

impl SessionBuilder {
    /// Starts from the paper's 65 nm kit and default generation options.
    pub fn new() -> SessionBuilder {
        SessionBuilder {
            kit: DesignKit::cnfet65(),
            defaults: GenerateOptions::default(),
            cache_capacity: DEFAULT_CAPACITY,
            cache_shards: DEFAULT_SHARDS,
            batch_workers: 0,
        }
    }

    /// Replaces the whole design kit (rules + device models + library
    /// matrix).
    #[must_use]
    pub fn kit(mut self, kit: DesignKit) -> SessionBuilder {
        self.defaults.rules = kit.rules;
        self.kit = kit;
        self
    }

    /// Sets the rule deck (on both the kit and the generation defaults).
    #[must_use]
    pub fn rules(mut self, rules: crate::core::DesignRules) -> SessionBuilder {
        self.kit.rules = rules;
        self.defaults.rules = rules;
        self
    }

    /// Sets the default layout style.
    #[must_use]
    pub fn style(mut self, style: Style) -> SessionBuilder {
        self.defaults.style = style;
        self
    }

    /// Sets the default arrangement scheme.
    #[must_use]
    pub fn scheme(mut self, scheme: Scheme) -> SessionBuilder {
        self.defaults.scheme = scheme;
        self
    }

    /// Sets the default sizing policy.
    #[must_use]
    pub fn sizing(mut self, sizing: Sizing) -> SessionBuilder {
        self.defaults.sizing = sizing;
        self
    }

    /// Sets the default row-decomposition policy.
    #[must_use]
    pub fn row_policy(mut self, policy: RowPolicy) -> SessionBuilder {
        self.defaults.row_policy = policy;
        self
    }

    /// Bounds each session cache (cells, libraries, immunity verdicts,
    /// flow results) to `capacity` entries, evicting least-recently-used
    /// entries past the bound. `0` disables caching entirely: every
    /// request rebuilds and nothing is stored. Default:
    /// [`DEFAULT_CAPACITY`](crate::cache::DEFAULT_CAPACITY).
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> SessionBuilder {
        self.cache_capacity = capacity;
        self
    }

    /// Stripes each session cache over `shards` independent locks
    /// (clamped to `[1, 256]`, rounded up to a power of two, and never
    /// wider than the capacity). More shards mean less contention on the
    /// concurrent hit path; `1` gives a single exact LRU. Default:
    /// [`DEFAULT_SHARDS`](crate::cache::DEFAULT_SHARDS).
    #[must_use]
    pub fn cache_shards(mut self, shards: usize) -> SessionBuilder {
        self.cache_shards = shards;
        self
    }

    /// Fixes the number of worker threads [`Session::generate_batch`]
    /// spawns. `0` (the default) uses the machine's available
    /// parallelism.
    #[must_use]
    pub fn batch_workers(mut self, workers: usize) -> SessionBuilder {
        self.batch_workers = workers;
        self
    }

    /// Builds the session.
    pub fn build(self) -> Session {
        let (capacity, shards) = (self.cache_capacity, self.cache_shards);
        Session {
            kit: self.kit,
            defaults: self.defaults,
            cells: ShardedCache::new(capacity, shards),
            libraries: ShardedCache::new(capacity, shards),
            immunity: ShardedCache::new(capacity, shards),
            flow_results: ShardedCache::new(capacity, shards),
            batch_workers: self.batch_workers,
            stats: StatsInner::default(),
        }
    }
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder::new()
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// The engine: kit + defaults + memoizing caches behind typed requests.
///
/// Sessions are internally synchronized — `&Session` methods may be called
/// from many threads, and [`Session::generate_batch`] does exactly that.
/// Caches are sharded ([`crate::cache`]): hits on different keys take
/// different locks, and builds are single-flight per key — concurrent
/// requests for the same key run one generation; the rest wait on their
/// shard and hit.
#[derive(Debug)]
pub struct Session {
    kit: DesignKit,
    defaults: GenerateOptions,
    cells: ShardedCache<CellKey, Arc<GeneratedCell>>,
    libraries: ShardedCache<LibraryRequest, Arc<CellLibrary>>,
    immunity: ShardedCache<ImmunityKey, Arc<ImmunityOutcome>>,
    flow_results: ShardedCache<String, Arc<FlowResult>>,
    batch_workers: usize,
    stats: StatsInner,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// A session over the paper's 65 nm kit with default options.
    pub fn new() -> Session {
        SessionBuilder::new().build()
    }

    /// Starts configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// The session's design kit.
    pub fn kit(&self) -> &DesignKit {
        &self.kit
    }

    /// The generation options used when a request does not carry its own.
    pub fn defaults(&self) -> &GenerateOptions {
        &self.defaults
    }

    /// A snapshot of the cache and executor counters, aggregated over the
    /// cache shards.
    pub fn stats(&self) -> SessionStats {
        let cells = self.cells.stats();
        let libraries = self.libraries.stats();
        let immunity = self.immunity.stats();
        let flows = self.flow_results.stats();
        SessionStats {
            cell_hits: cells.hits,
            cell_misses: cells.misses,
            cell_evictions: cells.evictions,
            library_hits: libraries.hits,
            library_misses: libraries.misses,
            library_evictions: libraries.evictions,
            immunity_hits: immunity.hits,
            immunity_misses: immunity.misses,
            flow_hits: flows.hits,
            flow_misses: flows.misses,
            inflight_waits: cells.inflight_waits
                + libraries.inflight_waits
                + immunity.inflight_waits
                + flows.inflight_waits,
            batches: self.stats.batches.load(Ordering::Relaxed),
            steals: self.stats.steals.load(Ordering::Relaxed),
            flows: self.stats.flows.load(Ordering::Relaxed),
        }
    }

    /// Per-shard counters of the cell cache.
    pub fn cell_cache_stats(&self) -> CacheStats {
        self.cells.stats()
    }

    /// Per-shard counters of the library cache.
    pub fn library_cache_stats(&self) -> CacheStats {
        self.libraries.stats()
    }

    /// Number of distinct cell layouts currently cached.
    pub fn cached_cells(&self) -> usize {
        self.cells.len()
    }

    /// Drops every cached cell, library, immunity verdict and flow result
    /// (counters are kept).
    pub fn clear_cache(&self) {
        self.cells.clear();
        self.libraries.clear();
        self.immunity.clear();
        self.flow_results.clear();
    }

    fn resolve_options(&self, req: &CellRequest) -> GenerateOptions {
        req.options.clone().unwrap_or_else(|| self.defaults.clone())
    }

    /// The cache key (and resolved options) of a catalog cell request.
    fn catalog_key(&self, request: &CellRequest) -> (CellKey, GenerateOptions) {
        let opts = self.resolve_options(request);
        let key = CellKey::Catalog {
            kind: request.kind,
            strength: request.strength.max(1),
            name: request.name.clone(),
            opts: opts.clone(),
        };
        (key, opts)
    }

    // -- cells --------------------------------------------------------------

    /// Services a [`CellRequest`] through the memoizing cache.
    ///
    /// # Errors
    ///
    /// Propagates [`GenerateError`] (as [`CnfetError::Generate`]) for
    /// network/style combinations the style cannot realize.
    pub fn generate(&self, request: &CellRequest) -> Result<CellResult> {
        let (key, opts) = self.catalog_key(request);
        self.serve(key, || {
            let strength = request.strength.max(1);
            let mut cell = if strength <= 1 {
                generate_cell(request.kind, &opts)?
            } else {
                let (pdn, pun, vars) = dk::fingered_networks(request.kind, strength);
                let name = request
                    .name
                    .clone()
                    .unwrap_or_else(|| CellLibrary::cell_name(request.kind, strength));
                generate_from_networks(name, request.kind, pdn, pun, vars, &opts)?
            };
            if let Some(name) = &request.name {
                cell.name = name.clone();
            }
            Ok(cell)
        })
    }

    /// Generates a cell from explicit pull networks, memoized like any
    /// other request (the key includes both networks and the input names).
    ///
    /// # Errors
    ///
    /// Propagates [`GenerateError`] for unrealizable networks.
    pub fn generate_custom(
        &self,
        name: impl Into<String>,
        pdn: SpNetwork,
        pun: SpNetwork,
        vars: VarTable,
        options: Option<GenerateOptions>,
    ) -> Result<CellResult> {
        let name = name.into();
        let opts = options.unwrap_or_else(|| self.defaults.clone());
        let key = CellKey::Custom {
            name: name.clone(),
            pdn: pdn.clone(),
            pun: pun.clone(),
            var_names: vars.iter().map(|(_, n)| n.to_string()).collect(),
            opts: opts.clone(),
        };
        self.serve(key, || {
            generate_from_networks(name, StdCellKind::Inv, pdn, pun, vars, &opts)
        })
    }

    /// The common cache path: a hit (earlier *or* concurrent build of the
    /// same key) returns the shared [`Arc`]; a miss runs `build` outside
    /// the shard lock, single-flight, so misses on different keys
    /// generate in parallel while duplicates wait instead of regenerating.
    fn serve<F>(&self, key: CellKey, build: F) -> Result<CellResult>
    where
        F: FnOnce() -> std::result::Result<GeneratedCell, GenerateError>,
    {
        let (cell, cached) = self.cells.get_or_build(&key, || build().map(Arc::new))?;
        Ok(CellResult { cell, cached })
    }

    /// Services many cell requests at once, fanning out across a
    /// work-stealing thread pool (the private `batch` module) against the shared
    /// cache, so cost-skewed request lists keep every worker busy.
    /// Results keep request order, one per request; all requests are
    /// attempted even when some fail.
    pub fn generate_batch(&self, requests: &[CellRequest]) -> Vec<Result<CellResult>> {
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        let workers = if self.batch_workers > 0 {
            self.batch_workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let outcome = batch::run(requests.len(), workers, |i| self.generate(&requests[i]));
        self.stats
            .steals
            .fetch_add(outcome.steals, Ordering::Relaxed);
        outcome.results
    }

    // -- libraries ----------------------------------------------------------

    /// Services a [`LibraryRequest`]: the full function × strength matrix
    /// of the session's kit, every layout drawn through the cell cache,
    /// and the finished library itself memoized per scheme.
    ///
    /// # Errors
    ///
    /// Propagates the first cell generation failure.
    pub fn library(&self, request: &LibraryRequest) -> Result<Arc<CellLibrary>> {
        let (lib, _cached) = self.libraries.get_or_build(request, || {
            let opts = dk::library_options(&self.kit, request.scheme);
            let built = dk::build_library_with(&self.kit, request.scheme, |kind, strength| {
                let req = CellRequest {
                    kind,
                    strength,
                    options: Some(opts.clone()),
                    name: Some(CellLibrary::cell_name(kind, strength)),
                };
                match self.generate(&req) {
                    Ok(result) => Ok(result.cell),
                    Err(CnfetError::Generate(e)) => Err(e),
                    Err(other) => {
                        unreachable!("cell generation only fails with GenerateError: {other}")
                    }
                }
            })?;
            Ok::<_, CnfetError>(Arc::new(built))
        })?;
        Ok(lib)
    }

    // -- immunity -----------------------------------------------------------

    /// Services an [`ImmunityRequest`]: generates (or recalls) the cell,
    /// then runs the requested engine(s). The engine verdict is memoized
    /// on the same cache machinery as cells — repeating an analysis
    /// (certification or a deterministic seeded Monte-Carlo) is a hit.
    ///
    /// # Errors
    ///
    /// Propagates cell generation failures.
    pub fn immunity(&self, request: &ImmunityRequest) -> Result<ImmunityReport> {
        let cell = self.generate(&request.cell)?.cell;
        let key = ImmunityKey {
            cell: self.catalog_key(&request.cell).0,
            engine: format!("{:?}", request.engine),
        };
        let (outcome, _cached) = self.immunity.get_or_build(&key, || {
            let (cert, mc) = match &request.engine {
                ImmunityEngine::Certify => (Some(certify(&cell.semantics)), None),
                ImmunityEngine::MonteCarlo(opts) => (None, Some(simulate(&cell.semantics, opts))),
                ImmunityEngine::Both(opts) => (
                    Some(certify(&cell.semantics)),
                    Some(simulate(&cell.semantics, opts)),
                ),
            };
            let immune = cert.as_ref().is_none_or(|c| c.immune)
                && mc.as_ref().is_none_or(|m| m.failures == 0);
            Ok::<_, CnfetError>(Arc::new(ImmunityOutcome { immune, cert, mc }))
        })?;
        Ok(ImmunityReport {
            cell,
            immune: outcome.immune,
            cert: outcome.cert.clone(),
            mc: outcome.mc.clone(),
        })
    }

    // -- flow ---------------------------------------------------------------

    /// Services a [`FlowRequest`]: netlist → placement → optional
    /// transistor-level simulation → optional GDSII, with the library
    /// build served from the session cache. Whole flow results are
    /// memoized too (keyed by the request's canonical rendering, which
    /// covers source, target, simulation spec and GDS flag), so repeating
    /// a run skips placement, simulation and assembly.
    ///
    /// # Errors
    ///
    /// Propagates Verilog parse, library generation and simulation
    /// failures.
    pub fn flow(&self, request: &FlowRequest) -> Result<FlowResult> {
        self.stats.flows.fetch_add(1, Ordering::Relaxed);
        let key = format!("{request:?}");
        let (result, _cached) = self
            .flow_results
            .get_or_build(&key, || self.run_flow(request).map(Arc::new))?;
        Ok((*result).clone())
    }

    /// Runs a flow end to end (the miss path of [`Session::flow`]).
    fn run_flow(&self, request: &FlowRequest) -> Result<FlowResult> {
        let netlist = match &request.source {
            FlowSource::FullAdder => full_adder(),
            FlowSource::Verilog(src) => parse_verilog(src)?,
            FlowSource::Netlist(n) => n.clone(),
        };
        let scheme = match request.target {
            FlowTarget::Cnfet(scheme) => scheme,
            // The CMOS baseline derives its widths from the Scheme-1
            // CNFET library (identical λ rules).
            FlowTarget::Cmos => Scheme::Scheme1,
        };
        let lib = self.library(&LibraryRequest::new(scheme))?;
        for inst in &netlist.instances {
            let name = CellLibrary::cell_name(inst.kind, inst.strength);
            if lib.cell(&name).is_none() {
                return Err(CnfetError::MissingCell(name));
            }
        }
        let placement = match request.target {
            FlowTarget::Cnfet(_) => place_cnfet_with(&netlist, &lib),
            FlowTarget::Cmos => place_cmos_with(&self.kit, &netlist, &lib),
        };
        let metrics = match &request.sim {
            Some(spec) => {
                let tech = match request.target {
                    FlowTarget::Cnfet(_) => Tech::Cnfet,
                    FlowTarget::Cmos => Tech::Cmos,
                };
                Some(simulate_netlist_with(
                    &self.kit,
                    &netlist,
                    &placement,
                    tech,
                    &spec.toggle_in,
                    &spec.ties,
                    &spec.watch_out,
                )?)
            }
            None => None,
        };
        let gds = if request.emit_gds && matches!(request.target, FlowTarget::Cnfet(_)) {
            Some(assemble_gds_with(&netlist.name, &placement, &lib))
        } else {
            None
        };
        Ok(FlowResult {
            netlist,
            placement,
            metrics,
            gds,
        })
    }
}
