//! The `Session` engine: one front door for the whole CNFET stack.
//!
//! A [`Session`] owns a design kit and default generation options, and
//! services typed requests — [`CellRequest`] → [`CellResult`],
//! [`LibraryRequest`] → [`CellLibrary`], [`ImmunityRequest`] →
//! [`ImmunityReport`], [`FlowRequest`] → [`FlowResult`] — through an
//! internal memoizing cache. The cache is keyed by the full generation
//! input (`StdCellKind` × strength × `GenerateOptions`, which embeds the
//! `DesignRules`), so co-optimization sweeps that re-request the same
//! cells thousands of times (Hills et al.'s CNT-variation loops) pay for
//! each layout exactly once; every later hit returns the same
//! [`Arc`]-shared cell. [`Session::generate_batch`] fans a request list
//! out across threads against the shared cache.
//!
//! # Example
//!
//! ```
//! use cnfet::{CellRequest, Session};
//! use cnfet::core::StdCellKind;
//!
//! let session = Session::new();
//! let first = session.generate(&CellRequest::new(StdCellKind::Nand(3)))?;
//! let again = session.generate(&CellRequest::new(StdCellKind::Nand(3)))?;
//! assert!(!first.cached && again.cached, "second request is a cache hit");
//! assert_eq!(session.stats().cell_misses, 1);
//! # Ok::<(), cnfet::CnfetError>(())
//! ```

use crate::core::{
    generate_cell, generate_from_networks, GenerateError, GenerateOptions, GeneratedCell,
    RowPolicy, Scheme, Sizing, StdCellKind, Style,
};
use crate::dk::{self, CellLibrary, DesignKit};
use crate::error::{CnfetError, Result};
use crate::flow::{
    assemble_gds_with, full_adder, parse_verilog, place_cmos_with, place_cnfet_with,
    simulate_netlist_with, Netlist, NetlistMetrics, Placement, Tech,
};
use crate::immunity::{certify, simulate, CertReport, McOptions, McReport};
use crate::logic::{SpNetwork, VarTable};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A request for one standard-cell layout.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CellRequest {
    /// Cell function.
    pub kind: StdCellKind,
    /// Drive strength: `1` for the plain cell, `n > 1` for an `n`-fingered
    /// library cell (parallel replicas snaked through shared contacts).
    pub strength: u8,
    /// Generation options; `None` uses the session defaults.
    pub options: Option<GenerateOptions>,
    /// Overrides the generated cell's name (library cells use `INV_X4`
    /// style names).
    pub name: Option<String>,
}

impl CellRequest {
    /// A strength-1 request with session-default options.
    pub fn new(kind: StdCellKind) -> CellRequest {
        CellRequest {
            kind,
            strength: 1,
            options: None,
            name: None,
        }
    }

    /// Sets explicit generation options.
    #[must_use]
    pub fn options(mut self, options: GenerateOptions) -> CellRequest {
        self.options = Some(options);
        self
    }

    /// Sets the drive strength.
    #[must_use]
    pub fn strength(mut self, strength: u8) -> CellRequest {
        self.strength = strength.max(1);
        self
    }

    /// Overrides the generated cell name.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> CellRequest {
        self.name = Some(name.into());
        self
    }
}

impl From<StdCellKind> for CellRequest {
    fn from(kind: StdCellKind) -> CellRequest {
        CellRequest::new(kind)
    }
}

/// The answer to a [`CellRequest`].
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The generated (possibly cache-shared) layout.
    pub cell: Arc<GeneratedCell>,
    /// Whether the session cache already held this layout.
    pub cached: bool,
}

/// A request for a full standard-cell library.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LibraryRequest {
    /// Cell arrangement scheme for every layout in the library.
    pub scheme: Scheme,
}

impl LibraryRequest {
    /// Library in the given scheme.
    pub fn new(scheme: Scheme) -> LibraryRequest {
        LibraryRequest { scheme }
    }
}

impl From<Scheme> for LibraryRequest {
    fn from(scheme: Scheme) -> LibraryRequest {
        LibraryRequest { scheme }
    }
}

/// Which immunity engine(s) to run on a cell.
#[derive(Clone, Debug)]
pub enum ImmunityEngine {
    /// Sound certification only (fast; if it says immune, no mispositioned
    /// tube can break the cell).
    Certify,
    /// Monte-Carlo only: sampled wavy tubes, failure counts, witnesses.
    MonteCarlo(McOptions),
    /// Both engines; the verdict requires both to pass.
    Both(McOptions),
}

/// A request to analyze a cell's mispositioned-CNT immunity.
#[derive(Clone, Debug)]
pub struct ImmunityRequest {
    /// Which cell to analyze (generated through the session cache).
    pub cell: CellRequest,
    /// Which engine(s) to run.
    pub engine: ImmunityEngine,
}

impl ImmunityRequest {
    /// Certification-only request for a cell.
    pub fn certify(cell: impl Into<CellRequest>) -> ImmunityRequest {
        ImmunityRequest {
            cell: cell.into(),
            engine: ImmunityEngine::Certify,
        }
    }

    /// Monte-Carlo request for a cell.
    pub fn monte_carlo(cell: impl Into<CellRequest>, opts: McOptions) -> ImmunityRequest {
        ImmunityRequest {
            cell: cell.into(),
            engine: ImmunityEngine::MonteCarlo(opts),
        }
    }
}

/// The answer to an [`ImmunityRequest`].
#[derive(Clone, Debug)]
pub struct ImmunityReport {
    /// The analyzed cell.
    pub cell: Arc<GeneratedCell>,
    /// Combined verdict of every engine that ran.
    pub immune: bool,
    /// Certification details, when requested.
    pub cert: Option<CertReport>,
    /// Monte-Carlo details, when requested.
    pub mc: Option<McReport>,
}

/// Where a flow's gate-level netlist comes from.
#[derive(Clone, Debug)]
pub enum FlowSource {
    /// The paper's Figure 8 full adder.
    FullAdder,
    /// Structural Verilog source text.
    Verilog(String),
    /// An already-built netlist.
    Netlist(Netlist),
}

/// Target technology/arrangement of a flow run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowTarget {
    /// CNFET library in the given scheme.
    Cnfet(Scheme),
    /// The industrial-65nm-like CMOS baseline (row placement).
    Cmos,
}

/// Transient-simulation spec for a flow run.
#[derive(Clone, Debug)]
pub struct SimSpec {
    /// Primary input that gets the full-cycle pulse.
    pub toggle_in: String,
    /// Values for the remaining primary inputs.
    pub ties: BTreeMap<String, bool>,
    /// Primary output the delay is measured to.
    pub watch_out: String,
}

/// A request to run the logic-to-GDSII flow.
#[derive(Clone, Debug)]
pub struct FlowRequest {
    /// Netlist source.
    pub source: FlowSource,
    /// Target technology.
    pub target: FlowTarget,
    /// Optional transistor-level simulation after placement.
    pub sim: Option<SimSpec>,
    /// Assemble the placed design to a GDSII stream (CNFET targets only;
    /// the CMOS baseline has no drawn library).
    pub emit_gds: bool,
}

impl FlowRequest {
    /// Place-only flow for a source in a CNFET scheme.
    pub fn cnfet(source: FlowSource, scheme: Scheme) -> FlowRequest {
        FlowRequest {
            source,
            target: FlowTarget::Cnfet(scheme),
            sim: None,
            emit_gds: false,
        }
    }

    /// Place-only flow for a source in the CMOS baseline.
    pub fn cmos(source: FlowSource) -> FlowRequest {
        FlowRequest {
            source,
            target: FlowTarget::Cmos,
            sim: None,
            emit_gds: false,
        }
    }

    /// Adds a transient simulation to the run.
    #[must_use]
    pub fn simulate(mut self, spec: SimSpec) -> FlowRequest {
        self.sim = Some(spec);
        self
    }

    /// Requests GDSII assembly of the placed design.
    #[must_use]
    pub fn with_gds(mut self) -> FlowRequest {
        self.emit_gds = true;
        self
    }
}

/// The answer to a [`FlowRequest`].
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// The flow's netlist (parsed or passed through).
    pub netlist: Netlist,
    /// The placement.
    pub placement: Placement,
    /// Delay/energy metrics, when a simulation was requested.
    pub metrics: Option<NetlistMetrics>,
    /// GDSII stream, when requested on a CNFET target.
    pub gds: Option<Vec<u8>>,
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct StatsInner {
    cell_hits: AtomicU64,
    cell_misses: AtomicU64,
    library_hits: AtomicU64,
    library_misses: AtomicU64,
    batches: AtomicU64,
    flows: AtomicU64,
}

/// A point-in-time snapshot of a session's cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Cell requests answered from the cache.
    pub cell_hits: u64,
    /// Cell requests that ran the layout generator.
    pub cell_misses: u64,
    /// Library requests answered from the cache.
    pub library_hits: u64,
    /// Library requests that built a library.
    pub library_misses: u64,
    /// `generate_batch` invocations.
    pub batches: u64,
    /// Flow runs.
    pub flows: u64,
}

impl SessionStats {
    /// Total cell requests served.
    pub fn cell_requests(&self) -> u64 {
        self.cell_hits + self.cell_misses
    }
}

// ---------------------------------------------------------------------------
// Cache keys
// ---------------------------------------------------------------------------

/// The memoization key: the complete input of a generation. Options embed
/// the [`DesignRules`](crate::core::DesignRules), so two sessions-worth of
/// rule decks never collide.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum CellKey {
    Catalog {
        kind: StdCellKind,
        strength: u8,
        name: Option<String>,
        opts: GenerateOptions,
    },
    Custom {
        name: String,
        pdn: SpNetwork,
        pun: SpNetwork,
        var_names: Vec<String>,
        opts: GenerateOptions,
    },
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Configures and builds a [`Session`].
///
/// # Example
///
/// ```
/// use cnfet::SessionBuilder;
/// use cnfet::core::{Scheme, Sizing, Style};
///
/// let session = SessionBuilder::new()
///     .scheme(Scheme::Scheme2)
///     .sizing(Sizing::Uniform { width_lambda: 6 })
///     .build();
/// assert_eq!(session.defaults().scheme, Scheme::Scheme2);
/// assert_eq!(session.defaults().style, Style::NewImmune);
/// ```
#[derive(Clone, Debug)]
pub struct SessionBuilder {
    kit: DesignKit,
    defaults: GenerateOptions,
}

impl SessionBuilder {
    /// Starts from the paper's 65 nm kit and default generation options.
    pub fn new() -> SessionBuilder {
        SessionBuilder {
            kit: DesignKit::cnfet65(),
            defaults: GenerateOptions::default(),
        }
    }

    /// Replaces the whole design kit (rules + device models + library
    /// matrix).
    #[must_use]
    pub fn kit(mut self, kit: DesignKit) -> SessionBuilder {
        self.defaults.rules = kit.rules;
        self.kit = kit;
        self
    }

    /// Sets the rule deck (on both the kit and the generation defaults).
    #[must_use]
    pub fn rules(mut self, rules: crate::core::DesignRules) -> SessionBuilder {
        self.kit.rules = rules;
        self.defaults.rules = rules;
        self
    }

    /// Sets the default layout style.
    #[must_use]
    pub fn style(mut self, style: Style) -> SessionBuilder {
        self.defaults.style = style;
        self
    }

    /// Sets the default arrangement scheme.
    #[must_use]
    pub fn scheme(mut self, scheme: Scheme) -> SessionBuilder {
        self.defaults.scheme = scheme;
        self
    }

    /// Sets the default sizing policy.
    #[must_use]
    pub fn sizing(mut self, sizing: Sizing) -> SessionBuilder {
        self.defaults.sizing = sizing;
        self
    }

    /// Sets the default row-decomposition policy.
    #[must_use]
    pub fn row_policy(mut self, policy: RowPolicy) -> SessionBuilder {
        self.defaults.row_policy = policy;
        self
    }

    /// Builds the session.
    pub fn build(self) -> Session {
        Session {
            kit: self.kit,
            defaults: self.defaults,
            cells: OnceMap::new(),
            libraries: OnceMap::new(),
            stats: StatsInner::default(),
        }
    }
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder::new()
    }
}

// ---------------------------------------------------------------------------
// Single-flight memoization
// ---------------------------------------------------------------------------

/// A memoizing map with single-flight builds: when several threads miss
/// on the same key at once, exactly one runs the builder while the others
/// block on the condvar and receive the finished value as a hit. A failed
/// build releases the key so the next waiter retries.
#[derive(Debug)]
struct OnceMap<K, V> {
    state: Mutex<OnceState<K, V>>,
    ready: Condvar,
}

#[derive(Debug)]
struct OnceState<K, V> {
    done: HashMap<K, V>,
    in_flight: HashSet<K>,
}

impl<K: Clone + Eq + std::hash::Hash, V: Clone> OnceMap<K, V> {
    fn new() -> OnceMap<K, V> {
        OnceMap {
            state: Mutex::new(OnceState {
                done: HashMap::new(),
                in_flight: HashSet::new(),
            }),
            ready: Condvar::new(),
        }
    }

    /// Returns `(value, was_cached)`; `was_cached` is true whenever the
    /// value came from another build (earlier or concurrent), so a miss
    /// is reported exactly once per cached entry.
    fn get_or_build<E>(
        &self,
        key: &K,
        build: impl FnOnce() -> std::result::Result<V, E>,
    ) -> std::result::Result<(V, bool), E> {
        let mut state = self.state.lock().expect("cache lock");
        loop {
            if let Some(v) = state.done.get(key) {
                return Ok((v.clone(), true));
            }
            if !state.in_flight.contains(key) {
                break;
            }
            state = self.ready.wait(state).expect("cache lock");
        }
        state.in_flight.insert(key.clone());
        drop(state);

        let built = build();

        let mut state = self.state.lock().expect("cache lock");
        state.in_flight.remove(key);
        let result = match built {
            Ok(v) => {
                state.done.insert(key.clone(), v.clone());
                Ok((v, false))
            }
            // Waiters re-check and the next one retries the build.
            Err(e) => Err(e),
        };
        drop(state);
        self.ready.notify_all();
        result
    }

    fn len(&self) -> usize {
        self.state.lock().expect("cache lock").done.len()
    }

    fn clear(&self) {
        self.state.lock().expect("cache lock").done.clear();
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// The engine: kit + defaults + memoizing caches behind typed requests.
///
/// Sessions are internally synchronized — `&Session` methods may be called
/// from many threads, and [`Session::generate_batch`] does exactly that.
/// Cache builds are single-flight: concurrent requests for the same key
/// run one generation; the rest wait and hit.
#[derive(Debug)]
pub struct Session {
    kit: DesignKit,
    defaults: GenerateOptions,
    cells: OnceMap<CellKey, Arc<GeneratedCell>>,
    libraries: OnceMap<LibraryRequest, Arc<CellLibrary>>,
    stats: StatsInner,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// A session over the paper's 65 nm kit with default options.
    pub fn new() -> Session {
        SessionBuilder::new().build()
    }

    /// Starts configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// The session's design kit.
    pub fn kit(&self) -> &DesignKit {
        &self.kit
    }

    /// The generation options used when a request does not carry its own.
    pub fn defaults(&self) -> &GenerateOptions {
        &self.defaults
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            cell_hits: self.stats.cell_hits.load(Ordering::Relaxed),
            cell_misses: self.stats.cell_misses.load(Ordering::Relaxed),
            library_hits: self.stats.library_hits.load(Ordering::Relaxed),
            library_misses: self.stats.library_misses.load(Ordering::Relaxed),
            batches: self.stats.batches.load(Ordering::Relaxed),
            flows: self.stats.flows.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct cell layouts currently cached.
    pub fn cached_cells(&self) -> usize {
        self.cells.len()
    }

    /// Drops every cached cell and library (counters are kept).
    pub fn clear_cache(&self) {
        self.cells.clear();
        self.libraries.clear();
    }

    fn resolve_options(&self, req: &CellRequest) -> GenerateOptions {
        req.options.clone().unwrap_or_else(|| self.defaults.clone())
    }

    // -- cells --------------------------------------------------------------

    /// Services a [`CellRequest`] through the memoizing cache.
    ///
    /// # Errors
    ///
    /// Propagates [`GenerateError`] (as [`CnfetError::Generate`]) for
    /// network/style combinations the style cannot realize.
    pub fn generate(&self, request: &CellRequest) -> Result<CellResult> {
        let opts = self.resolve_options(request);
        let key = CellKey::Catalog {
            kind: request.kind,
            strength: request.strength.max(1),
            name: request.name.clone(),
            opts: opts.clone(),
        };
        self.serve(key, || {
            let strength = request.strength.max(1);
            let mut cell = if strength <= 1 {
                generate_cell(request.kind, &opts)?
            } else {
                let (pdn, pun, vars) = dk::fingered_networks(request.kind, strength);
                let name = request
                    .name
                    .clone()
                    .unwrap_or_else(|| CellLibrary::cell_name(request.kind, strength));
                generate_from_networks(name, request.kind, pdn, pun, vars, &opts)?
            };
            if let Some(name) = &request.name {
                cell.name = name.clone();
            }
            Ok(cell)
        })
    }

    /// Generates a cell from explicit pull networks, memoized like any
    /// other request (the key includes both networks and the input names).
    ///
    /// # Errors
    ///
    /// Propagates [`GenerateError`] for unrealizable networks.
    pub fn generate_custom(
        &self,
        name: impl Into<String>,
        pdn: SpNetwork,
        pun: SpNetwork,
        vars: VarTable,
        options: Option<GenerateOptions>,
    ) -> Result<CellResult> {
        let name = name.into();
        let opts = options.unwrap_or_else(|| self.defaults.clone());
        let key = CellKey::Custom {
            name: name.clone(),
            pdn: pdn.clone(),
            pun: pun.clone(),
            var_names: vars.iter().map(|(_, n)| n.to_string()).collect(),
            opts: opts.clone(),
        };
        self.serve(key, || {
            generate_from_networks(name, StdCellKind::Inv, pdn, pun, vars, &opts)
        })
    }

    /// The common cache path: a hit (earlier *or* concurrent build of the
    /// same key) returns the shared [`Arc`]; a miss runs `build` outside
    /// the cache lock, single-flight, so misses on different keys
    /// generate in parallel while duplicates wait instead of regenerating.
    fn serve<F>(&self, key: CellKey, build: F) -> Result<CellResult>
    where
        F: FnOnce() -> std::result::Result<GeneratedCell, GenerateError>,
    {
        let (cell, cached) = self.cells.get_or_build(&key, || build().map(Arc::new))?;
        let counter = if cached {
            &self.stats.cell_hits
        } else {
            &self.stats.cell_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Ok(CellResult { cell, cached })
    }

    /// Services many cell requests at once, fanning out across threads
    /// against the shared cache. Results keep request order, one per
    /// request; all requests are attempted even when some fail.
    pub fn generate_batch(&self, requests: &[CellRequest]) -> Vec<Result<CellResult>> {
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(requests.len());
        if workers <= 1 {
            return requests.iter().map(|r| self.generate(r)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<CellResult>>>> =
            requests.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(request) = requests.get(i) else {
                        break;
                    };
                    *slots[i].lock().expect("batch slot lock") = Some(self.generate(request));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("batch slot lock")
                    .expect("every slot visited")
            })
            .collect()
    }

    // -- libraries ----------------------------------------------------------

    /// Services a [`LibraryRequest`]: the full function × strength matrix
    /// of the session's kit, every layout drawn through the cell cache,
    /// and the finished library itself memoized per scheme.
    ///
    /// # Errors
    ///
    /// Propagates the first cell generation failure.
    pub fn library(&self, request: &LibraryRequest) -> Result<Arc<CellLibrary>> {
        let (lib, cached) = self.libraries.get_or_build(request, || {
            let opts = dk::library_options(&self.kit, request.scheme);
            let built = dk::build_library_with(&self.kit, request.scheme, |kind, strength| {
                let req = CellRequest {
                    kind,
                    strength,
                    options: Some(opts.clone()),
                    name: Some(CellLibrary::cell_name(kind, strength)),
                };
                match self.generate(&req) {
                    Ok(result) => Ok(result.cell),
                    Err(CnfetError::Generate(e)) => Err(e),
                    Err(other) => {
                        unreachable!("cell generation only fails with GenerateError: {other}")
                    }
                }
            })?;
            Ok::<_, CnfetError>(Arc::new(built))
        })?;
        let counter = if cached {
            &self.stats.library_hits
        } else {
            &self.stats.library_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Ok(lib)
    }

    // -- immunity -----------------------------------------------------------

    /// Services an [`ImmunityRequest`]: generates (or recalls) the cell,
    /// then runs the requested engine(s).
    ///
    /// # Errors
    ///
    /// Propagates cell generation failures.
    pub fn immunity(&self, request: &ImmunityRequest) -> Result<ImmunityReport> {
        let cell = self.generate(&request.cell)?.cell;
        let (cert, mc) = match &request.engine {
            ImmunityEngine::Certify => (Some(certify(&cell.semantics)), None),
            ImmunityEngine::MonteCarlo(opts) => (None, Some(simulate(&cell.semantics, opts))),
            ImmunityEngine::Both(opts) => (
                Some(certify(&cell.semantics)),
                Some(simulate(&cell.semantics, opts)),
            ),
        };
        let immune =
            cert.as_ref().is_none_or(|c| c.immune) && mc.as_ref().is_none_or(|m| m.failures == 0);
        Ok(ImmunityReport {
            cell,
            immune,
            cert,
            mc,
        })
    }

    // -- flow ---------------------------------------------------------------

    /// Services a [`FlowRequest`]: netlist → placement → optional
    /// transistor-level simulation → optional GDSII, with the library
    /// build served from the session cache.
    ///
    /// # Errors
    ///
    /// Propagates Verilog parse, library generation and simulation
    /// failures.
    pub fn flow(&self, request: &FlowRequest) -> Result<FlowResult> {
        self.stats.flows.fetch_add(1, Ordering::Relaxed);
        let netlist = match &request.source {
            FlowSource::FullAdder => full_adder(),
            FlowSource::Verilog(src) => parse_verilog(src)?,
            FlowSource::Netlist(n) => n.clone(),
        };
        let scheme = match request.target {
            FlowTarget::Cnfet(scheme) => scheme,
            // The CMOS baseline derives its widths from the Scheme-1
            // CNFET library (identical λ rules).
            FlowTarget::Cmos => Scheme::Scheme1,
        };
        let lib = self.library(&LibraryRequest::new(scheme))?;
        for inst in &netlist.instances {
            let name = CellLibrary::cell_name(inst.kind, inst.strength);
            if lib.cell(&name).is_none() {
                return Err(CnfetError::MissingCell(name));
            }
        }
        let placement = match request.target {
            FlowTarget::Cnfet(_) => place_cnfet_with(&netlist, &lib),
            FlowTarget::Cmos => place_cmos_with(&self.kit, &netlist, &lib),
        };
        let metrics = match &request.sim {
            Some(spec) => {
                let tech = match request.target {
                    FlowTarget::Cnfet(_) => Tech::Cnfet,
                    FlowTarget::Cmos => Tech::Cmos,
                };
                Some(simulate_netlist_with(
                    &self.kit,
                    &netlist,
                    &placement,
                    tech,
                    &spec.toggle_in,
                    &spec.ties,
                    &spec.watch_out,
                )?)
            }
            None => None,
        };
        let gds = if request.emit_gds && matches!(request.target, FlowTarget::Cnfet(_)) {
            Some(assemble_gds_with(&netlist.name, &placement, &lib))
        } else {
            None
        };
        Ok(FlowResult {
            netlist,
            placement,
            metrics,
            gds,
        })
    }
}
