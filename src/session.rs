//! The `Session` engine: one front door for the whole CNFET stack.
//!
//! A [`Session`] owns a design kit and default generation options, and
//! services every typed request through one generic entry point,
//! [`Session::run`]: [`CellRequest`] → [`CellResult`], [`LibraryRequest`]
//! → [`dk::CellLibrary`](crate::dk::CellLibrary), [`ImmunityRequest`] →
//! [`ImmunityReport`], [`FlowRequest`] → [`FlowResult`], and the
//! composite [`SweepRequest`](crate::SweepRequest) →
//! [`SweepReport`](crate::SweepReport). Every kind implements the
//! [`SessionRequest`] trait, so memoization, per-key single-flight, and
//! stats accounting are written once — `run` looks the request's
//! [`CacheKey`](crate::CacheKey) up in the class's sharded cache
//! ([`crate::cache`]) and executes only on a miss.
//!
//! Three ways to drive it:
//!
//! * [`Session::run`] — synchronous, one request;
//! * [`Session::run_batch`] — synchronous, a slice of one request kind,
//!   fanned out across a scoped work-stealing executor;
//! * [`Session::submit`] / [`Session::submit_all`] — **non-blocking**:
//!   the request is queued on a persistent work-stealing pool and a
//!   [`JobHandle`] comes back immediately, with `wait()` / `try_get()` /
//!   `wait_timeout()` / `is_done()` to harvest the result.
//!   `submit_all` accepts heterogeneous mixes via [`RequestKind`] — the
//!   shape of a co-optimization sweep that interleaves thousands of
//!   cells, immunity verdicts, and flow runs.
//!
//! Sessions are cheap handles: [`Session::clone`] shares the caches, the
//! stats, and the job pool, so one engine can serve many producers.
//!
//! # Example
//!
//! ```
//! use cnfet::{CellRequest, ImmunityRequest, RequestKind, Session};
//! use cnfet::core::StdCellKind;
//!
//! let session = Session::new();
//!
//! // Synchronous: one generic entry point for every request kind.
//! let first = session.run(&CellRequest::new(StdCellKind::Nand(3)))?;
//! let again = session.run(&CellRequest::new(StdCellKind::Nand(3)))?;
//! assert!(!first.cached && again.cached, "second request is a cache hit");
//! assert_eq!(session.stats().cells.misses, 1);
//!
//! // Non-blocking: submit returns a JobHandle immediately.
//! let job = session.submit(ImmunityRequest::certify(StdCellKind::Nand(3)));
//! assert!(job.wait()?.immune);
//!
//! // Heterogeneous mixes fan out through the same pool, results in
//! // submission order.
//! let handles = session.submit_all([
//!     RequestKind::from(CellRequest::new(StdCellKind::Inv)),
//!     RequestKind::from(ImmunityRequest::certify(StdCellKind::Inv)),
//! ]);
//! for handle in handles {
//!     handle.wait()?;
//! }
//! # Ok::<(), cnfet::CnfetError>(())
//! ```

use crate::batch;
use crate::cache::{CacheStats, ShardedCache, DEFAULT_CAPACITY, DEFAULT_SHARDS};
use crate::core::{GenerateOptions, GeneratedCell, RowPolicy, Scheme, Sizing, StdCellKind, Style};
use crate::dk::DesignKit;
use crate::error::Result;
use crate::flow::{Netlist, NetlistMetrics, Placement};
use crate::immunity::{CertReport, McOptions, McReport};
use crate::jobs::{job_channel, JobHandle, Pool};
use crate::logic::{SpNetwork, VarTable};
use crate::request::{CustomCellRequest, RequestClass, RequestKind, ResponseKind, SessionRequest};
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A request for one standard-cell layout.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CellRequest {
    /// Cell function.
    pub kind: StdCellKind,
    /// Drive strength: `1` for the plain cell, `n > 1` for an `n`-fingered
    /// library cell (parallel replicas snaked through shared contacts).
    pub strength: u8,
    /// Generation options; `None` uses the session defaults.
    pub options: Option<GenerateOptions>,
    /// Overrides the generated cell's name (library cells use `INV_X4`
    /// style names).
    pub name: Option<String>,
}

impl CellRequest {
    /// A strength-1 request with session-default options.
    pub fn new(kind: StdCellKind) -> CellRequest {
        CellRequest {
            kind,
            strength: 1,
            options: None,
            name: None,
        }
    }

    /// Sets explicit generation options.
    #[must_use]
    pub fn options(mut self, options: GenerateOptions) -> CellRequest {
        self.options = Some(options);
        self
    }

    /// Sets the drive strength.
    #[must_use]
    pub fn strength(mut self, strength: u8) -> CellRequest {
        self.strength = strength.max(1);
        self
    }

    /// Overrides the generated cell name.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> CellRequest {
        self.name = Some(name.into());
        self
    }
}

impl From<StdCellKind> for CellRequest {
    fn from(kind: StdCellKind) -> CellRequest {
        CellRequest::new(kind)
    }
}

/// The answer to a [`CellRequest`].
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The generated (possibly cache-shared) layout.
    pub cell: Arc<GeneratedCell>,
    /// Whether the session cache already held this layout.
    pub cached: bool,
}

/// A request for a full standard-cell library.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LibraryRequest {
    /// Cell arrangement scheme for every layout in the library.
    pub scheme: Scheme,
}

impl LibraryRequest {
    /// Library in the given scheme.
    pub fn new(scheme: Scheme) -> LibraryRequest {
        LibraryRequest { scheme }
    }
}

impl From<Scheme> for LibraryRequest {
    fn from(scheme: Scheme) -> LibraryRequest {
        LibraryRequest { scheme }
    }
}

/// Which immunity engine(s) to run on a cell.
#[derive(Clone, Debug)]
pub enum ImmunityEngine {
    /// Sound certification only (fast; if it says immune, no mispositioned
    /// tube can break the cell).
    Certify,
    /// Monte-Carlo only: sampled wavy tubes, failure counts, witnesses.
    MonteCarlo(McOptions),
    /// Both engines; the verdict requires both to pass.
    Both(McOptions),
}

/// A request to analyze a cell's mispositioned-CNT immunity.
#[derive(Clone, Debug)]
pub struct ImmunityRequest {
    /// Which cell to analyze (generated through the session cache).
    pub cell: CellRequest,
    /// Which engine(s) to run.
    pub engine: ImmunityEngine,
}

impl ImmunityRequest {
    /// Certification-only request for a cell.
    pub fn certify(cell: impl Into<CellRequest>) -> ImmunityRequest {
        ImmunityRequest {
            cell: cell.into(),
            engine: ImmunityEngine::Certify,
        }
    }

    /// Monte-Carlo request for a cell.
    pub fn monte_carlo(cell: impl Into<CellRequest>, opts: McOptions) -> ImmunityRequest {
        ImmunityRequest {
            cell: cell.into(),
            engine: ImmunityEngine::MonteCarlo(opts),
        }
    }
}

/// The answer to an [`ImmunityRequest`].
#[derive(Clone, Debug)]
pub struct ImmunityReport {
    /// The analyzed cell.
    pub cell: Arc<GeneratedCell>,
    /// Combined verdict of every engine that ran.
    pub immune: bool,
    /// Certification details, when requested.
    pub cert: Option<CertReport>,
    /// Monte-Carlo details, when requested.
    pub mc: Option<McReport>,
}

/// Where a flow's gate-level netlist comes from.
#[derive(Clone, Debug)]
pub enum FlowSource {
    /// The paper's Figure 8 full adder.
    FullAdder,
    /// Structural Verilog source text.
    Verilog(String),
    /// An already-built netlist.
    Netlist(Netlist),
}

/// Target technology/arrangement of a flow run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowTarget {
    /// CNFET library in the given scheme.
    Cnfet(Scheme),
    /// The industrial-65nm-like CMOS baseline (row placement).
    Cmos,
}

/// Transient-simulation spec for a flow run.
#[derive(Clone, Debug)]
pub struct SimSpec {
    /// Primary input that gets the full-cycle pulse.
    pub toggle_in: String,
    /// Values for the remaining primary inputs.
    pub ties: BTreeMap<String, bool>,
    /// Primary output the delay is measured to.
    pub watch_out: String,
}

/// A request to run the logic-to-GDSII flow.
#[derive(Clone, Debug)]
pub struct FlowRequest {
    /// Netlist source.
    pub source: FlowSource,
    /// Target technology.
    pub target: FlowTarget,
    /// Optional transistor-level simulation after placement.
    pub sim: Option<SimSpec>,
    /// Assemble the placed design to a GDSII stream (CNFET targets only;
    /// the CMOS baseline has no drawn library).
    pub emit_gds: bool,
}

impl FlowRequest {
    /// Place-only flow for a source in a CNFET scheme.
    pub fn cnfet(source: FlowSource, scheme: Scheme) -> FlowRequest {
        FlowRequest {
            source,
            target: FlowTarget::Cnfet(scheme),
            sim: None,
            emit_gds: false,
        }
    }

    /// Place-only flow for a source in the CMOS baseline.
    pub fn cmos(source: FlowSource) -> FlowRequest {
        FlowRequest {
            source,
            target: FlowTarget::Cmos,
            sim: None,
            emit_gds: false,
        }
    }

    /// Adds a transient simulation to the run.
    #[must_use]
    pub fn simulate(mut self, spec: SimSpec) -> FlowRequest {
        self.sim = Some(spec);
        self
    }

    /// Requests GDSII assembly of the placed design.
    #[must_use]
    pub fn with_gds(mut self) -> FlowRequest {
        self.emit_gds = true;
        self
    }
}

/// The answer to a [`FlowRequest`].
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// The flow's netlist (parsed or passed through).
    pub netlist: Netlist,
    /// The placement.
    pub placement: Placement,
    /// Delay/energy metrics, when a simulation was requested.
    pub metrics: Option<NetlistMetrics>,
    /// GDSII stream, when requested on a CNFET target.
    pub gds: Option<Vec<u8>>,
}

/// A request to transient-simulate a SPICE deck on the workspace MNA
/// engine ([`crate::mna`]): the deck is parsed
/// ([`Circuit::from_spice`](crate::spice::Circuit::from_spice)), lowered
/// to MNA form, analyzed once, and integrated with backward Euler on a
/// uniform grid (adaptive halving on Newton trouble).
///
/// Unlike every other request kind, transient runs are **not memoized**:
/// waveforms are bulky one-shot payloads, and decks arriving over the
/// wire rarely repeat byte-for-byte. [`Session::run`] therefore executes
/// every `TranRequest` fresh.
///
/// # Example
///
/// ```
/// use cnfet::{Session, TranRequest};
///
/// let deck = "V1 in 0 DC 1\nR1 in out 1k\nC1 out 0 1p\n.end";
/// let result = Session::new().run(&TranRequest::new(deck, 1e-11, 10e-9))?;
/// let out = result.probe("out").unwrap();
/// assert!((out.last().unwrap() - 1.0).abs() < 1e-3, "RC fully charged");
/// # Ok::<(), cnfet::CnfetError>(())
/// ```
#[derive(Clone, Debug)]
pub struct TranRequest {
    /// SPICE deck text (`R`/`C`/`L`/`V` cards; see
    /// [`crate::spice::deck`]).
    pub deck: String,
    /// Nominal timestep, seconds (must be positive and finite).
    pub dt: f64,
    /// Stop time, seconds (must be positive and finite).
    pub t_stop: f64,
    /// Node names to record. Empty records every non-ground node in deck
    /// order. An unknown name fails with
    /// [`CnfetError::Deck`](crate::CnfetError::Deck).
    pub probes: Vec<String>,
}

impl TranRequest {
    /// A transient run over the given deck, recording every node.
    pub fn new(deck: impl Into<String>, dt: f64, t_stop: f64) -> TranRequest {
        TranRequest {
            deck: deck.into(),
            dt,
            t_stop,
            probes: Vec::new(),
        }
    }

    /// Restricts the recorded traces to the named nodes.
    #[must_use]
    pub fn probes(mut self, probes: impl IntoIterator<Item = impl Into<String>>) -> TranRequest {
        self.probes = probes.into_iter().map(Into::into).collect();
        self
    }
}

/// The answer to a [`TranRequest`]: the recorded waveforms.
#[derive(Clone, Debug)]
pub struct TranResult {
    /// Strictly increasing sample times, seconds.
    pub time: Vec<f64>,
    /// One `(node name, voltage trace)` per requested probe, in request
    /// (or deck) order; each trace is sample-aligned with `time`.
    pub probes: Vec<(String, Vec<f64>)>,
}

impl TranResult {
    /// The voltage trace of a probed node, by name.
    pub fn probe(&self, name: &str) -> Option<&[f64]> {
        self.probes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, trace)| trace.as_slice())
    }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct StatsInner {
    batches: AtomicU64,
    batch_steals: AtomicU64,
    submitted: AtomicU64,
}

/// One request class's cache counters: the uniform per-kind unit of
/// [`SessionStats`], derived from that class's sharded cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestStats {
    /// Requests answered from the cache (including single-flight waits
    /// that received a concurrent build's value).
    pub hits: u64,
    /// The subset of `hits` served on the seqlock fast path — no mutex
    /// acquisition at all (see [`cache`](crate::cache)). Always
    /// `<= hits`.
    pub fast_hits: u64,
    /// Requests that executed (every request, when caching is disabled).
    pub misses: u64,
    /// Results evicted to respect the capacity bound.
    pub evictions: u64,
}

impl RequestStats {
    /// Total requests serviced for this class.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A point-in-time snapshot of a session's cache and executor counters.
///
/// Every request class gets the same [`RequestStats`] treatment —
/// hit/miss/eviction counts aggregated over that class's cache shards.
/// The per-shard breakdown is available from [`Session::cache_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Cell requests ([`RequestClass::Cell`]).
    pub cells: RequestStats,
    /// Library requests ([`RequestClass::Library`]).
    pub libraries: RequestStats,
    /// Immunity requests ([`RequestClass::Immunity`]).
    pub immunity: RequestStats,
    /// Flow requests ([`RequestClass::Flow`]).
    pub flows: RequestStats,
    /// Sweep requests ([`RequestClass::Sweeps`]): whole sweeps *and*
    /// their per-corner sub-requests share this class, so an overlapping
    /// sweep's corner reuse shows up here as hits.
    pub sweeps: RequestStats,
    /// Repair requests ([`RequestClass::Repairs`]): whole lots *and*
    /// their per-die sub-requests share this class, so an overlapping
    /// lot's die reuse shows up here as hits.
    pub repairs: RequestStats,
    /// Optimization requests ([`RequestClass::Optimizations`]): whole
    /// search trajectories *and* their target-free per-candidate
    /// outcomes share this class, so a re-targeted search's candidate
    /// reuse shows up here as hits (its sweep reuse lands in `sweeps`).
    pub optimizations: RequestStats,
    /// Macro requests ([`RequestClass::Macros`]): whole adder macros
    /// *and* their per-bit-slice sub-requests share this class, so an
    /// overlapping macro's slice reuse shows up here as hits (its
    /// sub-cell reuse lands in `cells`).
    pub macros: RequestStats,
    /// Times a request blocked waiting on another thread's in-flight
    /// build of the same key (across all caches).
    pub inflight_waits: u64,
    /// [`Session::run_batch`] invocations.
    pub batches: u64,
    /// Deque-to-deque steals performed by the batch executor and the job
    /// pool combined.
    pub steals: u64,
    /// Jobs enqueued through [`Session::submit`] / [`Session::submit_all`].
    pub submitted: u64,
}

impl SessionStats {
    /// The counters of one request class.
    pub fn class(&self, class: RequestClass) -> RequestStats {
        match class {
            RequestClass::Cell => self.cells,
            RequestClass::Library => self.libraries,
            RequestClass::Immunity => self.immunity,
            RequestClass::Flow => self.flows,
            RequestClass::Sweeps => self.sweeps,
            RequestClass::Repairs => self.repairs,
            RequestClass::Optimizations => self.optimizations,
            RequestClass::Macros => self.macros,
        }
    }

    /// Total requests serviced across every class.
    pub fn requests(&self) -> u64 {
        RequestClass::ALL
            .into_iter()
            .map(|c| self.class(c).requests())
            .sum()
    }
}

// ---------------------------------------------------------------------------
// Cache keys
// ---------------------------------------------------------------------------

/// The memoization key of a cell: the complete input of a generation.
/// Options embed the [`DesignRules`](crate::core::DesignRules), so two
/// sessions-worth of rule decks never collide.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) enum CellKey {
    Catalog {
        kind: StdCellKind,
        strength: u8,
        name: Option<String>,
        opts: GenerateOptions,
    },
    Custom {
        name: String,
        pdn: SpNetwork,
        pun: SpNetwork,
        var_names: Vec<String>,
        opts: GenerateOptions,
    },
}

/// A memoized result, type-erased so all four class caches share one
/// value representation. The concrete type behind the `dyn Any` is the
/// request's `Output`, recovered by downcast in [`Session::run`] — safe
/// because [`CacheKey`](crate::CacheKey)s are class-tagged and each class
/// has exactly one output type.
pub(crate) type CachedValue = Arc<dyn Any + Send + Sync>;

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Configures and builds a [`Session`].
///
/// # Example
///
/// ```
/// use cnfet::SessionBuilder;
/// use cnfet::core::{Scheme, Sizing, Style};
///
/// let session = SessionBuilder::new()
///     .scheme(Scheme::Scheme2)
///     .sizing(Sizing::Uniform { width_lambda: 6 })
///     .build();
/// assert_eq!(session.defaults().scheme, Scheme::Scheme2);
/// assert_eq!(session.defaults().style, Style::NewImmune);
/// ```
#[derive(Clone, Debug)]
pub struct SessionBuilder {
    kit: DesignKit,
    defaults: GenerateOptions,
    cache_capacity: usize,
    cache_shards: usize,
    batch_workers: usize,
}

impl SessionBuilder {
    /// Starts from the paper's 65 nm kit and default generation options.
    pub fn new() -> SessionBuilder {
        SessionBuilder {
            kit: DesignKit::cnfet65(),
            defaults: GenerateOptions::default(),
            cache_capacity: DEFAULT_CAPACITY,
            cache_shards: DEFAULT_SHARDS,
            batch_workers: 0,
        }
    }

    /// Replaces the whole design kit (rules + device models + library
    /// matrix).
    #[must_use]
    pub fn kit(mut self, kit: DesignKit) -> SessionBuilder {
        self.defaults.rules = kit.rules;
        self.kit = kit;
        self
    }

    /// Sets the rule deck (on both the kit and the generation defaults).
    #[must_use]
    pub fn rules(mut self, rules: crate::core::DesignRules) -> SessionBuilder {
        self.kit.rules = rules;
        self.defaults.rules = rules;
        self
    }

    /// Sets the default layout style.
    #[must_use]
    pub fn style(mut self, style: Style) -> SessionBuilder {
        self.defaults.style = style;
        self
    }

    /// Sets the default arrangement scheme.
    #[must_use]
    pub fn scheme(mut self, scheme: Scheme) -> SessionBuilder {
        self.defaults.scheme = scheme;
        self
    }

    /// Sets the default sizing policy.
    #[must_use]
    pub fn sizing(mut self, sizing: Sizing) -> SessionBuilder {
        self.defaults.sizing = sizing;
        self
    }

    /// Sets the default row-decomposition policy.
    #[must_use]
    pub fn row_policy(mut self, policy: RowPolicy) -> SessionBuilder {
        self.defaults.row_policy = policy;
        self
    }

    /// Bounds each session cache (one per [`RequestClass`]) to `capacity`
    /// entries, evicting least-recently-used entries past the bound. `0`
    /// disables caching entirely: every request rebuilds and nothing is
    /// stored. Default: [`DEFAULT_CAPACITY`](crate::cache::DEFAULT_CAPACITY).
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> SessionBuilder {
        self.cache_capacity = capacity;
        self
    }

    /// Stripes each session cache over `shards` independent locks
    /// (clamped to `[1, 256]`, rounded up to a power of two, and never
    /// wider than the capacity). More shards mean less contention on the
    /// concurrent hit path; `1` gives a single exact LRU. Default:
    /// [`DEFAULT_SHARDS`](crate::cache::DEFAULT_SHARDS).
    #[must_use]
    pub fn cache_shards(mut self, shards: usize) -> SessionBuilder {
        self.cache_shards = shards;
        self
    }

    /// Fixes the number of worker threads used by [`Session::run_batch`]
    /// and by the persistent [`Session::submit`] pool. `0` (the default)
    /// uses the machine's available parallelism.
    #[must_use]
    pub fn batch_workers(mut self, workers: usize) -> SessionBuilder {
        self.batch_workers = workers;
        self
    }

    /// Builds the session.
    pub fn build(self) -> Session {
        let (capacity, shards) = (self.cache_capacity, self.cache_shards);
        Session {
            core: Arc::new(SessionCore {
                kit: self.kit,
                defaults: self.defaults,
                caches: std::array::from_fn(|_| ShardedCache::new(capacity, shards)),
                batch_workers: self.batch_workers,
                stats: StatsInner::default(),
                pool: OnceLock::new(),
            }),
        }
    }
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder::new()
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// Everything a session owns, shared by all of its cheap [`Session`]
/// handles and referenced weakly by queued jobs.
struct SessionCore {
    kit: DesignKit,
    defaults: GenerateOptions,
    /// One sharded cache per [`RequestClass`], indexed by
    /// [`RequestClass::index`]. Values are type-erased (see
    /// [`CachedValue`]); keys are class-tagged, so a key only ever meets
    /// values of its own class's output type.
    caches: [ShardedCache<crate::request::CacheKey, CachedValue>; 8],
    batch_workers: usize,
    stats: StatsInner,
    /// The persistent job pool, started on the first [`Session::submit`].
    pool: OnceLock<Pool>,
}

/// The engine: kit + defaults + memoizing caches behind typed requests,
/// all serviced through the generic [`Session::run`].
///
/// Sessions are internally synchronized and cheap to clone — a clone is
/// another handle on the same caches, stats, and job pool. `&Session`
/// methods may be called from many threads; [`Session::run_batch`] and
/// the [`Session::submit`] pool do exactly that. Caches are sharded
/// ([`crate::cache`]): hits on different keys take different locks, and
/// builds are single-flight per key — concurrent requests for the same
/// key run one execution; the rest wait on their shard and hit.
///
/// # Example
///
/// ```
/// use cnfet::{CellRequest, Session};
/// use cnfet::core::StdCellKind;
///
/// let session = Session::new();
/// let inv = session.run(&CellRequest::new(StdCellKind::Inv))?;
/// assert!(!inv.cached, "first request generates");
/// assert!(session.run(&CellRequest::new(StdCellKind::Inv))?.cached);
/// assert_eq!(session.stats().cells.misses, 1);
/// # Ok::<(), cnfet::CnfetError>(())
/// ```
#[derive(Clone)]
pub struct Session {
    core: Arc<SessionCore>,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("defaults", &self.core.defaults)
            .field("stats", &self.stats())
            .field("pool", &self.core.pool.get())
            .finish_non_exhaustive()
    }
}

impl Session {
    /// A session over the paper's 65 nm kit with default options.
    pub fn new() -> Session {
        SessionBuilder::new().build()
    }

    /// Starts configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// The session's design kit.
    pub fn kit(&self) -> &DesignKit {
        &self.core.kit
    }

    /// The generation options used when a request does not carry its own.
    pub fn defaults(&self) -> &GenerateOptions {
        &self.core.defaults
    }

    /// A snapshot of the cache and executor counters, with every request
    /// class aggregated the same way over its cache shards.
    pub fn stats(&self) -> SessionStats {
        let mut per_class = [RequestStats::default(); 8];
        let mut inflight_waits = 0;
        for class in RequestClass::ALL {
            let s = self.core.caches[class.index()].stats();
            per_class[class.index()] = RequestStats {
                hits: s.hits,
                fast_hits: s.fast_hits,
                misses: s.misses,
                evictions: s.evictions,
            };
            inflight_waits += s.inflight_waits;
        }
        let pool_steals = self.core.pool.get().map_or(0, Pool::steals);
        SessionStats {
            cells: per_class[RequestClass::Cell.index()],
            libraries: per_class[RequestClass::Library.index()],
            immunity: per_class[RequestClass::Immunity.index()],
            flows: per_class[RequestClass::Flow.index()],
            sweeps: per_class[RequestClass::Sweeps.index()],
            repairs: per_class[RequestClass::Repairs.index()],
            optimizations: per_class[RequestClass::Optimizations.index()],
            macros: per_class[RequestClass::Macros.index()],
            inflight_waits,
            batches: self.core.stats.batches.load(Ordering::Relaxed),
            steals: self.core.stats.batch_steals.load(Ordering::Relaxed) + pool_steals,
            submitted: self.core.stats.submitted.load(Ordering::Relaxed),
        }
    }

    /// Per-shard counters of one request class's cache.
    pub fn cache_stats(&self, class: RequestClass) -> CacheStats {
        self.core.caches[class.index()].stats()
    }

    /// Per-shard counters of the cell cache.
    pub fn cell_cache_stats(&self) -> CacheStats {
        self.cache_stats(RequestClass::Cell)
    }

    /// Per-shard counters of the library cache.
    pub fn library_cache_stats(&self) -> CacheStats {
        self.cache_stats(RequestClass::Library)
    }

    /// Number of distinct cell layouts currently cached.
    pub fn cached_cells(&self) -> usize {
        self.core.caches[RequestClass::Cell.index()].len()
    }

    /// Drops every cached result of every request class — cells,
    /// libraries, immunity verdicts, and flow results alike (counters are
    /// kept). Builds in flight during the clear complete normally: their
    /// waiters are served and their claims release on their own, so
    /// in-flight accounting stays correct across a clear.
    pub fn clear_cache(&self) {
        for cache in &self.core.caches {
            cache.clear();
        }
    }

    /// The type-erased cache of one request class — the seam
    /// [`crate::snapshot`] exports from and seeds into.
    pub(crate) fn class_cache(
        &self,
        class: RequestClass,
    ) -> &ShardedCache<crate::request::CacheKey, CachedValue> {
        &self.core.caches[class.index()]
    }

    /// Serializes the session's sweep-class cache — whole
    /// [`SweepReport`](crate::SweepReport)s and their per-corner rows —
    /// to a versioned snapshot file, atomically (written to a sibling
    /// temp file and renamed into place). See [`crate::snapshot`] for
    /// the format and the warm-boot contract.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing or renaming the file.
    pub fn save_snapshot(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<usize> {
        crate::snapshot::save(self, path.as_ref())
    }

    /// Seeds the session's sweep-class cache from a snapshot file
    /// written by [`Session::save_snapshot`], returning the number of
    /// entries restored. Restored entries replay as pure cache hits.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`](crate::snapshot::SnapshotError) when
    /// the file cannot be read, has a mismatched magic/version, or is
    /// truncated/corrupt. The session is usable either way — a failed
    /// load leaves it exactly as cold as it was.
    pub fn load_snapshot(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> std::result::Result<usize, crate::snapshot::SnapshotError> {
        crate::snapshot::load(self, path.as_ref())
    }

    /// Resolves a cell request's options against the session defaults.
    pub(crate) fn resolve_options(&self, req: &CellRequest) -> GenerateOptions {
        req.options
            .clone()
            .unwrap_or_else(|| self.core.defaults.clone())
    }

    /// The cache key (and resolved options) of a catalog cell request.
    pub(crate) fn catalog_key(&self, request: &CellRequest) -> (CellKey, GenerateOptions) {
        let opts = self.resolve_options(request);
        let key = CellKey::Catalog {
            kind: request.kind,
            strength: request.strength.max(1),
            name: request.name.clone(),
            opts: opts.clone(),
        };
        (key, opts)
    }

    // -- the generic entry points -------------------------------------------

    /// Services any [`SessionRequest`] through the memoizing cache of its
    /// class: a hit (earlier *or* concurrent execution of the same key)
    /// clones the cached output; a miss runs
    /// [`execute`](SessionRequest::execute) outside the shard lock,
    /// single-flight, so misses on different keys run in parallel while
    /// duplicates wait instead of re-executing.
    ///
    /// # Errors
    ///
    /// Propagates whatever the request's execution produces — e.g.
    /// [`GenerateError`](crate::core::GenerateError) (as
    /// [`CnfetError::Generate`](crate::CnfetError::Generate)) for
    /// unrealizable cells, Verilog parse or simulation failures for
    /// flows.
    pub fn run<R: SessionRequest>(&self, request: &R) -> Result<R::Output> {
        let Some(key) = request.cache_key(self) else {
            return request.execute(self);
        };
        let cache = &self.core.caches[key.class().index()];
        let (value, cached) = cache.get_or_build(&key, || {
            request
                .execute(self)
                .map(|output| Arc::new(output) as CachedValue)
        })?;
        let output = value
            .downcast_ref::<R::Output>()
            .expect("cache value type matches its class-tagged key")
            .clone();
        Ok(R::annotate(output, cached))
    }

    /// Services many requests of one kind at once, fanning out across a
    /// scoped work-stealing thread pool (the private `batch` module)
    /// against the shared caches, so cost-skewed request lists keep every
    /// worker busy. Results keep request order, one per request; all
    /// requests are attempted even when some fail. Blocks until the whole
    /// batch finishes — for non-blocking submission use
    /// [`Session::submit`] / [`Session::submit_all`].
    pub fn run_batch<R>(&self, requests: &[R]) -> Vec<Result<R::Output>>
    where
        R: SessionRequest + Sync,
    {
        self.core.stats.batches.fetch_add(1, Ordering::Relaxed);
        let outcome = batch::run(requests.len(), self.worker_count(), |i| {
            self.run(&requests[i])
        });
        self.core
            .stats
            .batch_steals
            .fetch_add(outcome.steals, Ordering::Relaxed);
        outcome.results
    }

    /// Enqueues one request on the session's persistent work-stealing
    /// pool and returns immediately. The [`JobHandle`] resolves to the
    /// same output `run` would produce (hit or miss through the same
    /// caches); dropping the handle abandons the result but not the work.
    /// If the session's last handle drops with the job still queued, the
    /// handle resolves to [`CnfetError::Canceled`](crate::CnfetError::Canceled).
    pub fn submit<R>(&self, request: R) -> JobHandle<R::Output>
    where
        R: SessionRequest + Send + 'static,
    {
        let (completion, handle) = job_channel();
        self.pool().submit(make_job(
            &self.core,
            crate::jobs::UNBATCHED,
            request,
            completion,
        ));
        self.core.stats.submitted.fetch_add(1, Ordering::Relaxed);
        handle
    }

    /// Enqueues a heterogeneous request mix — any combination of cells,
    /// libraries, immunity verdicts, flows, and sweeps wrapped in
    /// [`RequestKind`] — under one queue lock, and returns one
    /// [`JobHandle`] per request **in submission order**. The pool's
    /// workers chunk and steal across the mix, so a cheap-cell tail never
    /// waits behind one heavy flow.
    pub fn submit_all<I>(&self, requests: I) -> Vec<JobHandle<ResponseKind>>
    where
        I: IntoIterator<Item = RequestKind>,
    {
        self.submit_all_batched(requests).1
    }

    /// [`Session::submit_all`] returning the fresh batch id the jobs were
    /// tagged with — composite requests pass it to
    /// [`Session::help_run_queued_job`] so their wait loops drain exactly
    /// their own fan-out.
    pub(crate) fn submit_all_batched<I>(&self, requests: I) -> (u64, Vec<JobHandle<ResponseKind>>)
    where
        I: IntoIterator<Item = RequestKind>,
    {
        let batch = crate::jobs::next_batch_id();
        let mut jobs = Vec::new();
        let handles: Vec<_> = requests
            .into_iter()
            .map(|request| {
                let (completion, handle) = job_channel();
                jobs.push(make_job(&self.core, batch, request, completion));
                handle
            })
            .collect();
        if jobs.is_empty() {
            // Don't spin up worker threads for an empty fan-out.
            return (batch, handles);
        }
        self.core
            .stats
            .submitted
            .fetch_add(handles.len() as u64, Ordering::Relaxed);
        self.pool().submit_many(jobs);
        (batch, handles)
    }

    /// The persistent pool, started on first use with the session's
    /// worker count.
    fn pool(&self) -> &Pool {
        self.core
            .pool
            .get_or_init(|| Pool::new(self.worker_count()))
    }

    /// Runs one queued pool job *of the given batch* on the calling
    /// thread, if any is immediately available. Composite requests
    /// (sweeps) call this in their handle-wait loops so a bounded worker
    /// set can never deadlock on a fan-out submitted from inside the
    /// pool; helping is batch-targeted so a helper can never run a
    /// foreign job that blocks on the helper's own single-flight claim.
    pub(crate) fn help_run_queued_job(&self, batch: u64) -> bool {
        self.core
            .pool
            .get()
            .is_some_and(|pool| pool.help_run_one(batch))
    }

    /// Effective executor width used by [`Session::run_batch`] and the
    /// persistent [`Session::submit`] pool: the
    /// [`SessionBuilder::batch_workers`] knob; else the
    /// `CNFET_TEST_WORKERS` environment variable (the CI matrix sets it
    /// to `1` to drive every suite through the single-worker composite
    /// path); else the machine's available parallelism. Public so
    /// embedders — the `cnfet-serve` stats endpoint — can report it.
    pub fn worker_count(&self) -> usize {
        if self.core.batch_workers > 0 {
            return self.core.batch_workers;
        }
        if let Some(n) = std::env::var("CNFET_TEST_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    // -- conveniences -------------------------------------------------------

    /// Generates a cell from explicit pull networks, memoized like any
    /// other request (the key includes both networks and the input names).
    ///
    /// # Errors
    ///
    /// Propagates [`GenerateError`](crate::core::GenerateError) for
    /// unrealizable networks.
    pub fn generate_custom(
        &self,
        name: impl Into<String>,
        pdn: SpNetwork,
        pun: SpNetwork,
        vars: VarTable,
        options: Option<GenerateOptions>,
    ) -> Result<CellResult> {
        self.run(&CustomCellRequest {
            name: name.into(),
            pdn,
            pun,
            vars,
            options,
        })
    }
}

/// Packages one request as a pool job. The job holds the session core
/// only weakly: if every [`Session`] handle is gone by the time the job
/// is popped, it resolves its handle to
/// [`CnfetError::Canceled`](crate::CnfetError::Canceled) instead of
/// keeping a dead engine alive.
fn make_job<R>(
    core: &Arc<SessionCore>,
    batch: u64,
    request: R,
    completion: crate::jobs::Completion<R::Output>,
) -> crate::jobs::Job
where
    R: SessionRequest + Send + 'static,
{
    let weak: Weak<SessionCore> = Arc::downgrade(core);
    crate::jobs::Job {
        batch,
        run: Box::new(move || match weak.upgrade() {
            Some(core) => {
                let session = Session { core };
                completion.complete(session.run(&request));
            }
            None => drop(completion),
        }),
    }
}
