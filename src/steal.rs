//! The shared work-stealing core: one injector queue feeding per-worker
//! deques, with steal-back-half-from-the-fullest rebalancing.
//!
//! Both executors pop through [`next_item`] — the scoped batch executor
//! ([`crate::batch`], items are task indices) and the persistent job
//! pool ([`crate::jobs`], items are boxed jobs) — so the subtle
//! chunk/steal logic exists exactly once:
//!
//! * a worker's own deque is popped front-to-back;
//! * an empty deque refills with a small chunk from the injector,
//!   keeping the tail available for other workers while amortizing the
//!   injector lock;
//! * with the injector empty too, the worker steals the back half of the
//!   fullest other deque, so a skewed tail of expensive items is
//!   redistributed instead of pinning one thread.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Pops worker `me`'s next item (local deque → injector chunk → steal).
/// `on_residue` fires whenever the call leaves additional items in the
/// worker's own deque (refill or steal residue) — a persistent executor
/// uses it to wake parked peers so the residue is stealable immediately;
/// the scoped batch executor passes a no-op (its workers never park).
pub(crate) fn next_item<T>(
    me: usize,
    injector: &Mutex<VecDeque<T>>,
    locals: &[Mutex<VecDeque<T>>],
    steals: &AtomicU64,
    on_residue: impl Fn(),
) -> Option<T> {
    if let Some(item) = locals[me].lock().expect("local deque lock").pop_front() {
        return Some(item);
    }

    // Refill from the injector.
    {
        let mut inj = injector.lock().expect("injector lock");
        if !inj.is_empty() {
            let chunk = (inj.len() / (2 * locals.len())).max(1).min(inj.len());
            let first = inj.pop_front().expect("non-empty injector");
            let mut residue = 0;
            {
                let mut local = locals[me].lock().expect("local deque lock");
                for _ in 1..chunk {
                    match inj.pop_front() {
                        Some(item) => {
                            local.push_back(item);
                            residue += 1;
                        }
                        None => break,
                    }
                }
            }
            drop(inj);
            if residue > 0 {
                on_residue();
            }
            return Some(first);
        }
    }

    // Steal the back half of the fullest victim deque.
    let victim = (0..locals.len())
        .filter(|&w| w != me)
        .max_by_key(|&w| locals[w].lock().expect("victim deque lock").len())?;
    let mut stolen: VecDeque<T> = {
        let mut v = locals[victim].lock().expect("victim deque lock");
        let keep = v.len() / 2;
        v.split_off(keep)
    };
    let first = stolen.pop_front()?;
    steals.fetch_add(1, Ordering::Relaxed);
    if !stolen.is_empty() {
        locals[me].lock().expect("local deque lock").extend(stolen);
        on_residue();
    }
    Some(first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn drains_everything_exactly_once() {
        let injector: Mutex<VecDeque<u32>> = Mutex::new((0..100).collect());
        let locals: Vec<Mutex<VecDeque<u32>>> =
            (0..4).map(|_| Mutex::new(VecDeque::new())).collect();
        let steals = AtomicU64::new(0);
        let mut seen = [false; 100];
        for me in (0..4).cycle() {
            match next_item(me, &injector, &locals, &steals, || ()) {
                Some(item) => {
                    assert!(!seen[item as usize], "{item} popped twice");
                    seen[item as usize] = true;
                }
                None if seen.iter().all(|&s| s) => break,
                None => {}
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn residue_hook_fires_on_chunked_refill() {
        let injector: Mutex<VecDeque<u32>> = Mutex::new((0..64).collect());
        let locals: Vec<Mutex<VecDeque<u32>>> =
            (0..2).map(|_| Mutex::new(VecDeque::new())).collect();
        let steals = AtomicU64::new(0);
        let fired = AtomicUsize::new(0);
        let item = next_item(0, &injector, &locals, &steals, || {
            fired.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(item, Some(0));
        assert_eq!(fired.load(Ordering::Relaxed), 1, "chunk left residue");
        assert!(!locals[0].lock().unwrap().is_empty());
    }
}
