//! # cnfet — compact imperfection-immune CNFET layouts
//!
//! A full reproduction, as a Rust library suite, of *"Design of Compact
//! Imperfection-Immune CNFET Layouts for Standard-Cell-Based Logic
//! Synthesis"* (Bobba, Zhang, Pullini, Atienza, De Micheli — DATE 2009).
//!
//! # The `Session` engine
//!
//! The front door of the stack is [`Session`]: build one from a
//! [`SessionBuilder`] (design rules, device model, scheme/style/sizing
//! defaults) and feed it typed requests. Cell layouts are memoized by
//! their complete generation input, so repeated requests — the shape of
//! any co-optimization sweep — cost one generation plus
//! [`Arc`](std::sync::Arc) clones,
//! and [`Session::generate_batch`] fans request lists out across threads.
//! All failures converge on one hierarchy, [`CnfetError`], with a
//! workspace-wide [`Result`] alias.
//!
//! | Request | Result | What runs |
//! |---|---|---|
//! | [`CellRequest`] | [`CellResult`] | the compact immune layout generator |
//! | [`LibraryRequest`] | [`dk::CellLibrary`] | the full function × strength library |
//! | [`ImmunityRequest`] | [`ImmunityReport`] | certification and/or Monte-Carlo |
//! | [`FlowRequest`] | [`FlowResult`] | place → simulate → GDSII |
//!
//! # Quickstart
//!
//! ```
//! use cnfet::{CellRequest, ImmunityRequest, Session};
//! use cnfet::core::StdCellKind;
//!
//! let session = Session::new();
//!
//! // The paper's Figure 3(b): a NAND3 laid out along an Euler path.
//! let nand3 = session.generate(&CellRequest::new(StdCellKind::Nand(3)))?;
//! assert_eq!(nand3.cell.pun_active_area_l2, 120.0); // 30λ × 4λ
//!
//! // 100% misposition-immune, and the second request is a cache hit.
//! let report = session.immunity(&ImmunityRequest::certify(StdCellKind::Nand(3)))?;
//! assert!(report.immune);
//! assert_eq!(session.stats().cell_hits, 1);
//! # Ok::<(), cnfet::CnfetError>(())
//! ```
//!
//! # The workspace underneath
//!
//! * [`geom`] — λ-grid layout geometry, GDSII and SVG;
//! * [`logic`] — boolean expressions, series–parallel networks, Euler paths;
//! * [`device`] — CNT physics, the screened CNFET compact model, the CMOS
//!   65 nm baseline, FO4 analytics;
//! * [`spice`] — MNA DC/transient simulation;
//! * [`core`] — the paper's contribution: the compact misaligned-CNT-immune
//!   layout generator (plus the old etched style and the vulnerable
//!   baseline), schemes 1/2, Table 1 area models, DRC;
//! * [`immunity`] — certification and Monte-Carlo analysis of functional
//!   immunity to mispositioned CNTs;
//! * [`dk`] — the CNFET design kit: library, characterization,
//!   Liberty/LEF/GDS;
//! * [`flow`] — logic-to-GDSII: synthesis, placement, simulation, assembly.
//!
//! Under the hood every request class (cells, libraries, immunity
//! verdicts, flow results) is memoized by a sharded, bounded,
//! single-flight LRU cache ([`cache`]) — tune it with
//! [`SessionBuilder::cache_capacity`] and
//! [`SessionBuilder::cache_shards`] — and batches run on a std-only
//! work-stealing executor. The per-crate free functions
//! ([`core::generate_cell`], `dk::build_library`, …) remain available
//! for one-shot use; the deprecated PR-1 shims that rebuilt state on
//! every call (`dk::DesignKit::build_library`, `flow::place_cnfet`, …)
//! have been removed.

pub use cnfet_core as core;
pub use cnfet_device as device;
pub use cnfet_dk as dk;
pub use cnfet_flow as flow;
pub use cnfet_geom as geom;
pub use cnfet_immunity as immunity;
pub use cnfet_logic as logic;
pub use cnfet_spice as spice;

mod batch;
pub mod cache;
mod error;
mod session;

pub use cache::{CacheStats, ShardStats};
pub use error::{CnfetError, Result};
pub use session::{
    CellRequest, CellResult, FlowRequest, FlowResult, FlowSource, FlowTarget, ImmunityEngine,
    ImmunityReport, ImmunityRequest, LibraryRequest, Session, SessionBuilder, SessionStats,
    SimSpec,
};
