//! # cnfet — compact imperfection-immune CNFET layouts
//!
//! A full reproduction, as a Rust library suite, of *"Design of Compact
//! Imperfection-Immune CNFET Layouts for Standard-Cell-Based Logic
//! Synthesis"* (Bobba, Zhang, Pullini, Atienza, De Micheli — DATE 2009).
//!
//! **Start with `ARCHITECTURE.md` at the repository root** for the
//! top-to-bottom guide: the workspace crate map, the [`SessionRequest`]
//! lifecycle, the cache and pool designs (including the batch-targeted
//! helping rule composite requests rely on), the determinism contract,
//! and the `cnfet-serve` wire protocol with curl transcripts.
//!
//! # The `Session` engine
//!
//! The front door of the stack is [`Session`]: build one from a
//! [`SessionBuilder`] (design rules, device model, scheme/style/sizing
//! defaults) and feed it typed requests. Every request kind implements
//! the [`SessionRequest`] trait, and one generic entry point services
//! them all: [`Session::run`]. Results are memoized by their complete
//! generation input, so repeated requests — the shape of any
//! co-optimization sweep — cost one execution plus
//! [`Arc`](std::sync::Arc) clones. [`Session::run_batch`] fans a request
//! list out across threads, and [`Session::submit`] /
//! [`Session::submit_all`] enqueue work **non-blocking** on a persistent
//! work-stealing pool, returning [`JobHandle`]s (heterogeneous mixes go
//! through [`RequestKind`]). All failures converge on one hierarchy,
//! [`CnfetError`], with a workspace-wide [`Result`] alias.
//!
//! | Request | `run` output | What runs |
//! |---|---|---|
//! | [`CellRequest`] | [`CellResult`] | the compact immune layout generator |
//! | [`LibraryRequest`] | [`dk::CellLibrary`] | the full function × strength library |
//! | [`ImmunityRequest`] | [`ImmunityReport`] | certification and/or Monte-Carlo |
//! | [`FlowRequest`] | [`FlowResult`] | place → simulate → GDSII |
//! | [`SweepRequest`] | [`SweepReport`] | a variation sweep fanning out per-corner sub-requests |
//! | [`SweepCornerRequest`] | [`CornerRow`] | one cell at one process corner |
//! | [`RepairRequest`] | [`RepairReport`] | a per-die defect/repair lot fanning out per-die sub-requests |
//! | [`DieRequest`] | [`repair::DieOutcome`] | one die: sample defects, test sites, assign cells |
//! | [`OptimizeRequest`] | [`OptimizeReport`] | a processing↔circuit co-optimization search over memoized sweeps |
//! | [`MacroRequest`] | [`MacroReport`] | a hierarchical 8/32/64-bit adder macro fanning out per-bit-slice sub-requests |
//! | [`MacroSliceRequest`] | [`macros::SliceOutcome`] | one bit slice: sub-cell recall + carry/sum arc characterization |
//! | [`TranRequest`] | [`TranResult`] | a SPICE-deck transient on the MNA engine (uncached) |
//! | [`RequestKind`] (any mix) | [`ResponseKind`] | dispatch to the above |
//!
//! [`SweepRequest`] is the first *composite* request: its execution
//! schedules per-corner sub-requests on the same pool (deadlock-free on
//! a bounded worker set — see [`sweep`]) and reduces them into per-corner
//! rows, a delay/energy/yield Pareto frontier, and best/worst-corner
//! summaries. [`RepairRequest`] is the second, same shape over dies
//! instead of corners: sample a seed-keyed defect map per die, test
//! every site against every cell layout, and assign cells onto healthy
//! sites with bipartite matching or the in-repo SAT solver ([`repair`]).
//! [`OptimizeRequest`] nests them deepest: a coordinate-descent /
//! successive-halving search whose every candidate evaluation is itself
//! a memoized sweep, so overlapping candidates re-execute only new
//! corners and a re-targeted search replays measured candidates as pure
//! cache hits ([`optimize`]).
//! [`MacroRequest`] is the fourth and the first to climb a level of
//! *layout* hierarchy: it composes the paper's full adder into an
//! 8/32/64-bit ripple-carry or carry-look-ahead macro whose slices hold
//! an `Arc` reference to one shared sub-cell (never flattened copies),
//! fanning per-bit-slice characterizations out on the same pool
//! ([`macros`]).
//!
//! The per-kind methods of the 0.1 line (`Session::generate`,
//! `::library`, `::immunity`, `::flow`, `::generate_batch`) were
//! deprecated in 0.2.0 and are **removed** as of 0.3.0 — migrate
//! `session.generate(&r)` to `session.run(&r)`, and `generate_batch` to
//! [`Session::run_batch`] / [`Session::submit_all`]. The same
//! one-release policy retired the 0.4.0 wire-client deprecations in
//! 0.5.0: `cnfet_serve::Client::get`/`::post` are gone — use the
//! `Client::request(…)` builder.
//!
//! # Quickstart
//!
//! ```
//! use cnfet::{CellRequest, ImmunityRequest, Session};
//! use cnfet::core::StdCellKind;
//!
//! let session = Session::new();
//!
//! // The paper's Figure 3(b): a NAND3 laid out along an Euler path.
//! let nand3 = session.run(&CellRequest::new(StdCellKind::Nand(3)))?;
//! assert_eq!(nand3.cell.pun_active_area_l2, 120.0); // 30λ × 4λ
//!
//! // 100% misposition-immune, certified without regenerating the cell.
//! let report = session.run(&ImmunityRequest::certify(StdCellKind::Nand(3)))?;
//! assert!(report.immune);
//! assert_eq!(session.stats().cells.hits, 1);
//!
//! // Non-blocking: a JobHandle resolves on the session's job pool.
//! let job = session.submit(CellRequest::new(StdCellKind::Nand(3)));
//! assert!(job.wait()?.cached);
//! # Ok::<(), cnfet::CnfetError>(())
//! ```
//!
//! # The workspace underneath
//!
//! * [`geom`] — λ-grid layout geometry, GDSII and SVG;
//! * [`logic`] — boolean expressions, series–parallel networks, Euler paths;
//! * [`device`] — CNT physics, the screened CNFET compact model, the CMOS
//!   65 nm baseline, FO4 analytics;
//! * [`mna`] — the reusable-factorization MNA engine: one symbolic
//!   analysis per topology, in-place LU re-factorization per timestep,
//!   transient + AC analysis, `.measure`-style extraction;
//! * [`spice`] — netlists, deck parsing/rendering, and DC/transient
//!   simulation lowered onto [`mna`];
//! * [`core`] — the paper's contribution: the compact misaligned-CNT-immune
//!   layout generator (plus the old etched style and the vulnerable
//!   baseline), schemes 1/2, Table 1 area models, DRC;
//! * [`immunity`] — certification and Monte-Carlo analysis of functional
//!   immunity to mispositioned CNTs;
//! * [`dk`] — the CNFET design kit: library, characterization,
//!   Liberty/LEF/GDS;
//! * [`flow`] — logic-to-GDSII: synthesis, placement, simulation, assembly.
//!
//! Under the hood every request class ([`RequestClass`]: cells,
//! libraries, immunity verdicts, flow results, sweeps, repairs,
//! optimizations, macros) is memoized by
//! its own sharded, bounded, single-flight LRU cache ([`cache`]) — tune
//! it with [`SessionBuilder::cache_capacity`] and
//! [`SessionBuilder::cache_shards`] — and batches and submitted jobs run
//! on std-only work-stealing executors. The per-crate free functions
//! ([`core::generate_cell`], `dk::build_library`, …) remain available
//! for one-shot use; the deprecated PR-1 shims that rebuilt state on
//! every call (`dk::DesignKit::build_library`, `flow::place_cnfet`, …)
//! have been removed.
//!
//! # Serving the engine over the wire
//!
//! The sibling crate `cnfet-serve` exposes this whole engine to network
//! clients as a std-only HTTP/1.1 + JSON server: `POST /v1/run` and
//! `/v1/batch` for synchronous requests, `POST /v1/submit` +
//! `GET /v1/jobs/{id}` for the non-blocking [`Session::submit_all`]
//! shape, and `GET /v1/stats` surfacing [`SessionStats`] — so many
//! remote co-optimization loops share one warm cache. See
//! `ARCHITECTURE.md` for the protocol.

#![warn(missing_docs)]

pub use cnfet_core as core;
pub use cnfet_device as device;
pub use cnfet_dk as dk;
pub use cnfet_flow as flow;
pub use cnfet_geom as geom;
pub use cnfet_immunity as immunity;
pub use cnfet_logic as logic;
pub use cnfet_mna as mna;
pub use cnfet_spice as spice;

mod batch;
pub mod cache;
mod error;
mod jobs;
pub mod macros;
pub mod optimize;
pub mod repair;
mod request;
mod session;
pub mod snapshot;
mod steal;
pub mod sweep;

pub use cache::{CacheStats, ShardStats};
pub use error::{CnfetError, Result};
pub use jobs::JobHandle;
pub use macros::{MacroReport, MacroRequest, MacroSliceRequest, SliceObserver, SliceOutcome};
pub use optimize::{
    CandidateObserver, CandidateOutcome, CandidateRow, OptimizeAxis, OptimizeCandidateRequest,
    OptimizeReport, OptimizeRequest, OptimizeTarget,
};
pub use repair::{DieObserver, DieRequest, RepairReport, RepairRequest};
pub use request::{CacheKey, RequestClass, RequestKind, ResponseKind, SessionRequest};
pub use session::{
    CellRequest, CellResult, FlowRequest, FlowResult, FlowSource, FlowTarget, ImmunityEngine,
    ImmunityReport, ImmunityRequest, LibraryRequest, RequestStats, Session, SessionBuilder,
    SessionStats, SimSpec, TranRequest, TranResult,
};
pub use snapshot::SnapshotError;
pub use sweep::{
    CornerRow, CornerSummary, RowObserver, SweepCornerRequest, SweepMetrics, SweepReport,
    SweepRequest, VariationCorner, VariationGrid,
};
