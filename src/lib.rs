//! # cnfet — compact imperfection-immune CNFET layouts
//!
//! A full reproduction, as a Rust library suite, of *"Design of Compact
//! Imperfection-Immune CNFET Layouts for Standard-Cell-Based Logic
//! Synthesis"* (Bobba, Zhang, Pullini, Atienza, De Micheli — DATE 2009).
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`geom`] — λ-grid layout geometry, GDSII and SVG;
//! * [`logic`] — boolean expressions, series–parallel networks, Euler paths;
//! * [`device`] — CNT physics, the screened CNFET compact model, the CMOS
//!   65 nm baseline, FO4 analytics;
//! * [`spice`] — MNA DC/transient simulation;
//! * [`core`] — the paper's contribution: the compact misaligned-CNT-immune
//!   layout generator (plus the old etched style and the vulnerable
//!   baseline), schemes 1/2, Table 1 area models, DRC;
//! * [`immunity`] — certification and Monte-Carlo analysis of functional
//!   immunity to mispositioned CNTs;
//! * [`dk`] — the CNFET design kit: library, characterization,
//!   Liberty/LEF/GDS;
//! * [`flow`] — logic-to-GDSII: synthesis, placement, simulation, assembly.
//!
//! # Quickstart
//!
//! ```
//! use cnfet::core::{generate_cell, GenerateOptions, StdCellKind};
//! use cnfet::immunity::certify;
//!
//! // The paper's Figure 3(b): a NAND3 laid out along an Euler path.
//! let cell = generate_cell(StdCellKind::Nand(3), &GenerateOptions::default())?;
//! assert_eq!(cell.pun_active_area_l2, 120.0); // 30λ × 4λ
//! assert!(certify(&cell.semantics).immune);   // 100% misposition-immune
//! # Ok::<(), cnfet::core::GenerateError>(())
//! ```

pub use cnfet_core as core;
pub use cnfet_device as device;
pub use cnfet_dk as dk;
pub use cnfet_flow as flow;
pub use cnfet_geom as geom;
pub use cnfet_immunity as immunity;
pub use cnfet_logic as logic;
pub use cnfet_spice as spice;
