//! Per-die defect maps and fault-tolerant cell assignment as a
//! composite [`SessionRequest`](crate::SessionRequest).
//!
//! The sweep layer ([`crate::sweep`]) answers the *statistical*
//! question — what yield does a layout family achieve across process
//! corners. This module answers the *per-instance* one: given a
//! concrete lot of dies, each with its own seed-keyed defect
//! population, how many dies can be repaired by reassigning logical
//! cells onto healthy physical sites (spare-column repair)? The pure
//! machinery lives in the std-only `cnfet-repair` crate (re-exported
//! here): [`DefectMap`] sampling, [`SiteTester`] verdicts through the
//! immunity engine's conduction tracer, and the two interchangeable
//! assignment solvers ([`Solver::Matching`] / [`Solver::Sat`]).
//!
//! # Composite execution
//!
//! [`RepairRequest`] is the engine's second composite request, shaped
//! exactly like a sweep: its `execute` fans one [`DieRequest`] per die
//! out through [`Session::submit_all`], helping drain its own batch
//! while harvesting (the pool's batch-targeted helping protocol, so a
//! bounded worker set never deadlocks on the fan-out), and reduces the
//! per-die outcomes into a [`RepairReport`].
//!
//! Memoization works at both granularities in the
//! [`RequestClass::Repairs`](crate::RequestClass::Repairs) cache: a
//! repeated lot is one pure whole-report hit, and a *new* lot that
//! overlaps an earlier one (same cells, seed, process — more dies)
//! re-uses every memoized die and only executes the dies it adds. The
//! per-die key deliberately excludes the lot's die count: die `k` of a
//! 10-die lot and die `k` of a 1000-die lot are the same work.
//!
//! # Example
//!
//! ```
//! use cnfet::core::StdCellKind;
//! use cnfet::{RepairRequest, Session};
//!
//! let session = Session::new();
//! let request = RepairRequest::new([StdCellKind::Inv, StdCellKind::Nand(2)])
//!     .dies(4)
//!     .spares(2)
//!     .base_seed(7);
//! let report = session.run(&request)?;
//! assert_eq!(report.dies.len(), 4);
//! // Repeating the lot is a pure Repairs-class cache hit.
//! let again = session.run(&request)?;
//! assert!(std::sync::Arc::ptr_eq(&report, &again));
//! # Ok::<(), cnfet::CnfetError>(())
//! ```
//!
//! [`Session::submit_all`]: crate::Session::submit_all

pub use cnfet_repair::{
    max_matching, mix_seed, repair_die, solve, Assignment, Cnf, DefectKind, DefectMap,
    DefectParams, DieOutcome, DieSpec, Matching, Problem, SatResult, SiteDefects, SiteTester,
    SiteVerdict, Solver, TubeDefect,
};

use crate::error::Result;
use crate::request::RequestKind;
use crate::session::{CellRequest, Session};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Die observation
// ---------------------------------------------------------------------------

/// A callback invoked with each harvested [`DieOutcome`] of an
/// executing repair lot, in die order — the hook incremental-delivery
/// front ends (the `cnfet-serve` job streaming endpoint) use to flush
/// per-die progress as dies complete instead of waiting for the whole
/// report.
///
/// Like the sweep layer's [`RowObserver`](crate::RowObserver), the
/// observer is **not** part of the request's identity: it is excluded
/// from the cache key, so an observed and an unobserved lot share one
/// memoized report, and the observer only fires when the lot actually
/// *executes* — a whole-report cache hit skips execution, and the
/// caller already holds every outcome in the report it received.
#[derive(Clone)]
pub struct DieObserver(DieCallback);

/// The shared callback behind a [`DieObserver`].
type DieCallback = Arc<dyn Fn(usize, &DieOutcome) + Send + Sync>;

impl DieObserver {
    /// Wraps a callback. It may be called from whichever thread executes
    /// the lot and must not block for long — it runs inside the harvest
    /// loop, between die completions.
    pub fn new(f: impl Fn(usize, &DieOutcome) + Send + Sync + 'static) -> DieObserver {
        DieObserver(Arc::new(f))
    }

    /// Invokes the callback for die index `index`.
    pub(crate) fn notify(&self, index: usize, outcome: &DieOutcome) {
        (self.0)(index, outcome);
    }
}

impl std::fmt::Debug for DieObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("DieObserver")
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A fault-tolerant repair run over a lot of dies — a composite request
/// fanning one [`DieRequest`] per die (see the [module docs](self)).
///
/// # Example
///
/// ```
/// use cnfet::core::StdCellKind;
/// use cnfet::{RepairRequest, Session};
///
/// let request = RepairRequest::new([StdCellKind::Inv]).dies(3).spares(1);
/// let report = Session::new().run(&request)?;
/// assert_eq!(report.dies.len(), 3);
/// # Ok::<(), cnfet::CnfetError>(())
/// ```
#[derive(Clone, Debug)]
pub struct RepairRequest {
    /// Logical cells to place on every die; each is generated through
    /// the session cell cache.
    pub cells: Vec<CellRequest>,
    /// Number of dies in the lot (die indices `0..dies`).
    pub dies: u64,
    /// Lot-level base seed; per-die defect streams derive from it via
    /// [`mix_seed`].
    pub base_seed: u64,
    /// Spare physical sites per die beyond one per logical cell.
    pub spares: u32,
    /// CNT defect process parameters.
    pub params: DefectParams,
    /// Which assignment solver to run per die.
    pub solver: Solver,
    /// Pairs of logical cells (by index) that must land on adjacent
    /// sites.
    pub adjacent: Vec<(u32, u32)>,
    /// Per-die progress hook; excluded from the cache key (see
    /// [`DieObserver`]).
    observer: Option<DieObserver>,
}

impl RepairRequest {
    /// A one-die lot of the given cells with one spare site, default
    /// process parameters, the auto solver, and no adjacency
    /// constraints.
    pub fn new(cells: impl IntoIterator<Item = impl Into<CellRequest>>) -> RepairRequest {
        RepairRequest {
            cells: cells.into_iter().map(Into::into).collect(),
            dies: 1,
            base_seed: 0xD1E5,
            spares: 1,
            params: DefectParams::default(),
            solver: Solver::Auto,
            adjacent: Vec::new(),
            observer: None,
        }
    }

    /// Sets the lot size.
    #[must_use]
    pub fn dies(mut self, dies: u64) -> RepairRequest {
        self.dies = dies;
        self
    }

    /// Sets the lot-level base seed.
    #[must_use]
    pub fn base_seed(mut self, seed: u64) -> RepairRequest {
        self.base_seed = seed;
        self
    }

    /// Sets the spare site count per die.
    #[must_use]
    pub fn spares(mut self, spares: u32) -> RepairRequest {
        self.spares = spares;
        self
    }

    /// Replaces the defect process parameters.
    #[must_use]
    pub fn params(mut self, params: DefectParams) -> RepairRequest {
        self.params = params;
        self
    }

    /// Selects the assignment solver.
    #[must_use]
    pub fn solver(mut self, solver: Solver) -> RepairRequest {
        self.solver = solver;
        self
    }

    /// Replaces the adjacency constraint list.
    #[must_use]
    pub fn adjacent(mut self, pairs: impl IntoIterator<Item = (u32, u32)>) -> RepairRequest {
        self.adjacent = pairs.into_iter().collect();
        self
    }

    /// Attaches a per-die progress observer (see [`DieObserver`] for the
    /// ordering and cache-interaction contract).
    #[must_use]
    pub fn observe_dies(mut self, observer: DieObserver) -> RepairRequest {
        self.observer = Some(observer);
        self
    }

    /// Number of per-die outcomes this lot will produce — the count a
    /// streaming consumer should expect before the report lands.
    pub fn die_count(&self) -> usize {
        usize::try_from(self.dies).unwrap_or(usize::MAX)
    }

    /// The per-die sub-request of one die index.
    fn die_request(&self, die: u64) -> DieRequest {
        DieRequest {
            cells: self.cells.clone(),
            die,
            base_seed: self.base_seed,
            spares: self.spares,
            params: self.params,
            solver: self.solver,
            adjacent: self.adjacent.clone(),
        }
    }
}

/// One die's repair: the unit a [`RepairRequest`] fans out, itself a
/// [`SessionRequest`](crate::SessionRequest) memoized in the
/// [`RequestClass::Repairs`](crate::RequestClass::Repairs) cache. The
/// key holds the die *index*, never the surrounding lot's size, so
/// overlapping lots (and direct submissions) share die outcomes.
#[derive(Clone, Debug)]
pub struct DieRequest {
    /// Logical cells to place (generated through the session cache).
    pub cells: Vec<CellRequest>,
    /// Die index within the seeded defect stream.
    pub die: u64,
    /// Lot-level base seed.
    pub base_seed: u64,
    /// Spare sites beyond one per logical cell.
    pub spares: u32,
    /// Defect process parameters.
    pub params: DefectParams,
    /// Assignment solver.
    pub solver: Solver,
    /// Adjacency constraints (cell index pairs).
    pub adjacent: Vec<(u32, u32)>,
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// The reduction of a [`RepairRequest`]: every die's outcome plus the
/// lot-level yield and spare-utilization aggregates.
#[derive(Clone, Debug)]
pub struct RepairReport {
    /// Logical cells placed per die.
    pub cells: usize,
    /// Spare sites per die.
    pub spares: u32,
    /// One outcome per die, in die order (die `k` at index `k`).
    pub dies: Vec<DieOutcome>,
    /// Dies where every cell found a healthy site.
    pub repaired_dies: usize,
    /// Census of the dies that could not be repaired (die indices, in
    /// order).
    pub unrepairable: Vec<u64>,
    /// Spare sites actually consumed, summed over the repaired dies.
    pub spares_used: u64,
}

impl RepairReport {
    /// Fraction of dies functional after repair, the lot's bottom line.
    /// `None` for an empty lot.
    pub fn yield_after_repair(&self) -> Option<f64> {
        if self.dies.is_empty() {
            return None;
        }
        Some(self.repaired_dies as f64 / self.dies.len() as f64)
    }

    /// Fraction of the lot's spare sites consumed by repair. `None`
    /// when the lot has no spare sites at all.
    pub fn spare_utilization(&self) -> Option<f64> {
        let total = self.spares as u64 * self.dies.len() as u64;
        if total == 0 {
            return None;
        }
        Some(self.spares_used as f64 / total as f64)
    }

    /// Renders the report as a fixed-layout text table, one line per
    /// die plus the lot aggregates. Deterministic: equal reports render
    /// byte-identically (fixed column widths, fixed float precision),
    /// which is what the golden and determinism suites pin down.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "repair lot: {} cells/die, {} dies, {} spares/die",
            self.cells,
            self.dies.len(),
            self.spares
        );
        let _ = writeln!(
            out,
            "{:>6} {:>6} {:>10} {:>9} {:>9} {:>12}  assignment",
            "die", "sites", "defective", "repaired", "solver", "spares-used"
        );
        for outcome in &self.dies {
            let assignment = if outcome.repaired {
                outcome
                    .assignment
                    .iter()
                    .map(|s| s.map_or_else(|| "-".to_string(), |s| s.to_string()))
                    .collect::<Vec<_>>()
                    .join(",")
            } else {
                "-".to_string()
            };
            let _ = writeln!(
                out,
                "{:>6} {:>6} {:>10} {:>9} {:>9} {:>12}  {}",
                outcome.die,
                outcome.sites,
                outcome.defective_sites,
                if outcome.repaired { "yes" } else { "no" },
                outcome.solver,
                outcome.spares_used,
                assignment
            );
        }
        match self.yield_after_repair() {
            Some(y) => {
                let _ = writeln!(
                    out,
                    "yield after repair: {}/{} ({:.2}%)",
                    self.repaired_dies,
                    self.dies.len(),
                    y * 100.0
                );
            }
            None => {
                let _ = writeln!(out, "yield after repair: n/a (empty lot)");
            }
        }
        match self.spare_utilization() {
            Some(u) => {
                let _ = writeln!(
                    out,
                    "spare utilization: {}/{} ({:.2}%)",
                    self.spares_used,
                    self.spares as u64 * self.dies.len() as u64,
                    u * 100.0
                );
            }
            None => {
                let _ = writeln!(out, "spare utilization: n/a (no spares)");
            }
        }
        if self.unrepairable.is_empty() {
            let _ = writeln!(out, "unrepairable dies: none");
        } else {
            let census = self
                .unrepairable
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(out, "unrepairable dies: {census}");
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// How long a lot blocks on a pending handle when there is nothing of
/// its own batch to help with (same rationale as the sweep layer's
/// constant: helping is the fast path).
const HELP_WAIT: Duration = Duration::from_millis(2);

/// Executes a whole lot on a session: fan out one [`DieRequest`] per
/// die through the job pool, help drain the lot's own batch while
/// waiting, reduce into a [`RepairReport`].
pub(crate) fn execute_repair(
    request: &RepairRequest,
    session: &Session,
) -> Result<Arc<RepairReport>> {
    let submissions: Vec<RequestKind> = (0..request.dies)
        .map(|die| RequestKind::Die(request.die_request(die)))
        .collect();
    let (batch, handles) = session.submit_all_batched(submissions);

    let mut dies = Vec::with_capacity(handles.len());
    for mut handle in handles {
        // Harvest in die order, helping the pool in between — this
        // thread may BE the pool's only worker, so parking outright on
        // a handle whose job is still queued would deadlock. Helping is
        // restricted to the lot's own batch: popping an arbitrary job
        // (e.g. a second copy of this very lot) could block on the
        // single-flight claim this thread holds.
        let response = loop {
            if let Some(response) = handle.try_get() {
                break response;
            }
            if !session.help_run_queued_job(batch) {
                if let Some(response) = handle.wait_timeout(HELP_WAIT) {
                    break response;
                }
            }
        }?;
        let outcome = response
            .into_die()
            .expect("die submissions resolve to die outcomes");
        // Flush the outcome to any observer before moving on: outcomes
        // stream in exactly the `RepairReport::dies` order.
        if let Some(observer) = &request.observer {
            observer.notify(dies.len(), &outcome);
        }
        dies.push(outcome);
    }
    Ok(Arc::new(assemble(
        request.cells.len(),
        request.spares,
        dies,
    )))
}

/// Executes one die: generate (or recall) every cell layout through the
/// session cache, then hand the pure per-die pipeline to
/// [`cnfet_repair::repair_die`].
pub(crate) fn execute_die(request: &DieRequest, session: &Session) -> Result<DieOutcome> {
    let cells: Vec<Arc<crate::core::GeneratedCell>> = request
        .cells
        .iter()
        .map(|cell| session.run(cell).map(|r| r.cell))
        .collect::<Result<_>>()?;
    let layouts: Vec<&crate::core::SemanticLayout> = cells.iter().map(|c| &c.semantics).collect();
    Ok(repair_die(&DieSpec {
        layouts: &layouts,
        die: request.die,
        base_seed: request.base_seed,
        spares: request.spares,
        params: request.params,
        solver: request.solver,
        adjacent: &request.adjacent,
    }))
}

/// Reduces the harvested outcomes into the report, deterministic in die
/// order.
fn assemble(cells: usize, spares: u32, dies: Vec<DieOutcome>) -> RepairReport {
    let repaired_dies = dies.iter().filter(|d| d.repaired).count();
    let unrepairable = dies.iter().filter(|d| !d.repaired).map(|d| d.die).collect();
    let spares_used = dies.iter().map(|d| u64::from(d.spares_used)).sum();
    RepairReport {
        cells,
        spares,
        dies,
        repaired_dies,
        unrepairable,
        spares_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(die: u64, repaired: bool, spares_used: u32) -> DieOutcome {
        DieOutcome {
            die,
            sites: 3,
            defective_sites: u32::from(!repaired),
            repaired,
            solver: "matching",
            spares_used,
            assignment: if repaired {
                vec![Some(0), Some(1)]
            } else {
                vec![None, None]
            },
        }
    }

    #[test]
    fn assemble_aggregates_yield_and_census() {
        let report = assemble(
            2,
            1,
            vec![
                outcome(0, true, 0),
                outcome(1, false, 0),
                outcome(2, true, 1),
            ],
        );
        assert_eq!(report.repaired_dies, 2);
        assert_eq!(report.unrepairable, vec![1]);
        assert_eq!(report.spares_used, 1);
        assert!((report.yield_after_repair().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((report.spare_utilization().unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_lot_renders_without_division() {
        let report = assemble(1, 0, vec![]);
        assert_eq!(report.yield_after_repair(), None);
        assert_eq!(report.spare_utilization(), None);
        let text = report.render();
        assert!(text.contains("n/a (empty lot)"));
        assert!(text.contains("n/a (no spares)"));
    }

    #[test]
    fn render_is_deterministic_and_lists_census() {
        let report = assemble(2, 1, vec![outcome(0, true, 1), outcome(5, false, 0)]);
        let text = report.render();
        assert_eq!(text, report.render());
        assert!(text.contains("unrepairable dies: 5"), "{text}");
        assert!(text.contains("yield after repair: 1/2 (50.00%)"), "{text}");
    }
}
